"""Command-line front end: run and analyze programs in all three languages.

::

    python -m repro analyze --list-presets
    python -m repro run     PROGRAM.cps  --lang cps
    python -m repro analyze PROGRAM.lam  --preset 1cfa-gc
    python -m repro analyze PROGRAM.fj   --lang fj  --k 0 --check-casts
    python -m repro analyze PROGRAM.cps  --engine depgraph
    python -m repro batch   P1.cps P2.lam --preset 1cfa --preset 0cfa \\
                            --jobs 4 --cache-dir .fixcache --report out.json

``batch`` is the service layer's front door (:mod:`repro.service`): it
builds the grid of every given program x every ``--preset``, consults
the content-addressed fixpoint cache (``--cache-dir``; ``--no-cache``
to bypass a configured one), fans the misses across ``--jobs`` worker
processes, and writes a deterministic machine-readable report
(``--report``).  Re-running the same command is then mostly cache hits
-- the CI cache-smoke job asserts exactly that.

``analyze`` prints the reached-state count, the flows-to (or class-flow)
table and, where requested, counting/cast diagnostics.  The language
defaults from the file extension (``.cps``, ``.lam``, ``.fj``).

The recommended interface is ``--preset``: a named configuration from
:data:`repro.config.PRESETS` (``--list-presets`` shows them all).  A
preset fixes the addressing, engine, store implementation and the
GC/counting refinements at once; any explicitly passed fine-grained
flag (``--k``, ``--engine``, ``--store-impl``, ``--gc``, ``--counting``,
``--shared``) then overrides that field of the preset.

The fine-grained flags remain, one per degree of freedom:

* ``--engine`` -- the fixed-point strategy over the global-store domain:
  ``kleene`` (whole-domain rounds), ``worklist`` (frontier-driven,
  dependency-blind) or ``depgraph`` (frontier-driven, re-evaluating only
  configurations whose store dependencies changed).  All three compute
  identical results; ``depgraph`` is the fast one.
* ``--store-impl`` -- the store representation behind the worklist
  engines: ``persistent`` (immutable PMap snapshots) or ``versioned``
  (one mutable store with per-address change versions -- O(delta) per
  evaluation, the fastest configuration; see PERFORMANCE.md).
* ``--gc`` / ``--counting`` -- abstract garbage collection and counting;
  both now compose with every engine (the worklist engines sweep
  reachability per evaluation and saturate counts on convergence).
* ``--transition`` -- how the transition function executes: ``generic``
  runs the monadic normal form through the ``StorePassing`` stack,
  ``fused`` runs the staged first-order step compiled from it
  (identical fixed points; see PERFORMANCE.md, "The fused transition").
* ``--parallelism`` / ``--shards`` -- how the fixed-point worklist is
  evaluated: ``none`` is the sequential loop, ``sharded`` evaluates
  each round's pending configurations on ``--shards`` worker threads
  against private write overlays, barrier-merged through the versioned
  store (identical fixed points; needs ``--engine depgraph
  --store-impl versioned``; see PERFORMANCE.md, "Parallel fixpoints").
* ``--schedule`` -- the worklist drain order: ``fifo`` (historical) or
  ``priority`` (dependency-rank waves -- retriggered configurations
  re-run once per wave of store growth instead of once per bump;
  identical fixed points, fewer evaluations on chain/loop shapes; see
  PERFORMANCE.md, "Worklist scheduling").

Every combination is validated by
:meth:`repro.config.AnalysisConfig.validated` before anything runs;
invalid ones exit with the validation message.
"""

from __future__ import annotations

import argparse
import contextlib
import sys
from pathlib import Path

from repro.analysis.report import fmt_table, precision_summary


@contextlib.contextmanager
def _tracing(path: str | None, process_name: str = "repro"):
    """Route the command body's spans to a trace file (no-op without path).

    The artifact is Chrome ``trace_event`` JSON (open in
    ``chrome://tracing`` or https://ui.perfetto.dev), or JSONL when the
    path ends in ``.jsonl``.
    """
    if not path:
        yield None
        return
    from repro.obs.trace import Tracer, use_tracer

    tracer = Tracer(process_name=process_name)
    with use_tracer(tracer):
        yield tracer
    tracer.write(path)
    print(f"wrote trace to {path}", file=sys.stderr)


def detect_language(path: str, explicit: str | None) -> str:
    if explicit:
        return explicit
    suffix = Path(path).suffix.lstrip(".")
    if suffix in ("cps", "lam", "fj", "imp"):
        return suffix
    raise SystemExit(
        f"cannot infer language from {path!r}; pass --lang cps|lam|fj|imp"
    )


def read_source(path: str) -> str:
    if path == "-":
        return sys.stdin.read()
    return Path(path).read_text()


def cmd_run(args: argparse.Namespace) -> int:
    lang = detect_language(args.program, args.lang)
    source = read_source(args.program)
    with _tracing(args.trace):
        from repro.obs.trace import current_tracer

        tracer = current_tracer()
        if lang == "cps":
            from repro.cps import interpret, parse_program

            with tracer.span("parse", cat="prepare", language=lang):
                program = parse_program(source)
            with tracer.span("interpret", cat="concrete", language=lang):
                final = interpret(program, max_steps=args.max_steps)
            print(f"final state: {final!r}")
        elif lang == "lam":
            from repro.cesk import evaluate
            from repro.lam import parse_expr

            with tracer.span("parse", cat="prepare", language=lang):
                program = parse_expr(source)
            with tracer.span("interpret", cat="concrete", language=lang):
                value = evaluate(program, max_steps=args.max_steps)
            print(f"value: {value.lam!r}")
        elif lang == "imp":
            from repro.cesk import evaluate
            from repro.imp import lower_source

            with tracer.span("parse", cat="prepare", language=lang):
                program = lower_source(source)
            with tracer.span("interpret", cat="concrete", language=lang):
                value = evaluate(program, max_steps=args.max_steps)
            print(f"value: {value.lam!r}")
        else:
            from repro.fj import evaluate_fj, parse_program, typecheck_program

            with tracer.span("parse", cat="prepare", language=lang):
                program = parse_program(source)
            check = typecheck_program(program)
            for warning in check.warnings:
                print(f"warning: {warning}", file=sys.stderr)
            with tracer.span("interpret", cat="concrete", language=lang):
                value = evaluate_fj(program, max_steps=args.max_steps)
            print(f"value: new {value.cls}(...)")
    return 0


def _flows_table(flows: dict) -> str:
    rows = [
        (var, len(vals), ", ".join(sorted(repr(v) for v in vals))[:60])
        for var, vals in sorted(flows.items())
    ]
    return fmt_table(["variable", "count", "reaching values"], rows)


def _assemble(thunk):
    """Turn invalid flag combinations (library ``ValueError``s) into exits."""
    try:
        return thunk()
    except ValueError as error:
        raise SystemExit(str(error))


def _print_presets() -> None:
    from repro.config import list_presets

    rows = [(name, summary, desc) for name, summary, desc in list_presets()]
    print(fmt_table(["preset", "configuration", "description"], rows))


def _resolve_config(args: argparse.Namespace, lang: str):
    """The CLI flag surface as a validated :class:`AnalysisConfig`.

    Without ``--preset`` the fine-grained flags are the whole story (with
    the historical default of 1-CFA, monovariant when ``--k 0`` suits the
    per-state CPS path).  With ``--preset`` the named config is the base
    and only explicitly passed flags override its fields.
    """
    from repro.config import AnalysisConfig, build_config

    k = 1 if args.k is None else args.k
    if args.preset is not None:
        from repro.core.store import CountingStore

        # build_config owns the preset-override semantics (None = not
        # passed); store_true flags can only assert, never un-set
        config = _assemble(
            lambda: build_config(
                lang,
                preset=args.preset,
                store_like=CountingStore() if args.counting else None,
                shared=True if args.shared else None,
                gc=True if args.gc else None,
                engine=args.engine,
                store_impl=args.store_impl,
                transition=args.transition,
                parallelism=args.parallelism,
                shards=args.shards,
                schedule=args.schedule,
            )
        )
        if args.k is not None:
            config = config.replace(k=args.k)
            if config.addressing not in ("kcfa", "lcontext", "boundednat"):
                config = config.replace(addressing="kcfa")
        return _assemble(config.validated)
    addressing = (
        "zerocfa"
        if (lang == "cps" and k == 0 and not args.shared and args.engine is None)
        else "kcfa"
    )
    config = AnalysisConfig(
        language=lang,
        addressing=addressing,
        k=k,
        widening="store" if (args.shared or args.engine is not None) else "none",
        engine=args.engine,
        store_impl=args.store_impl or "persistent",
        gc=args.gc,
        counting=args.counting,
        transition=args.transition or "generic",
        parallelism=args.parallelism or "none",
        shards=1 if args.shards is None else args.shards,
        schedule=args.schedule or "fifo",
        label=args.preset or "",
    )
    return _assemble(config.validated)


def cmd_analyze(args: argparse.Namespace) -> int:
    if args.list_presets:
        _print_presets()
        return 0
    if args.program is None:
        raise SystemExit("analyze needs a program file (or --list-presets)")
    from repro.service.jobs import dispatch

    lang = detect_language(args.program, args.lang)
    source = read_source(args.program)
    # imp programs lower into the lam pipeline; the analysis is a lam analysis
    config = _resolve_config(args, "lam" if lang == "imp" else lang)

    with _tracing(args.trace):
        from repro.obs.trace import current_tracer

        with current_tracer().span("parse", cat="prepare", language=lang):
            if lang == "cps":
                from repro.cps.parser import parse_program

                program = parse_program(source)
            elif lang in ("lam", "imp"):
                if lang == "imp":
                    from repro.imp import lower_source

                    program = lower_source(source)
                else:
                    from repro.lam.parser import parse_expr

                    program = parse_expr(source)
            else:
                from repro.fj.parser import parse_program as parse_fj
                from repro.fj.typecheck import typecheck_program

                program = parse_fj(source)
                check = typecheck_program(program)
                for warning in check.warnings:
                    print(f"warning: {warning}", file=sys.stderr)

        # the same tier cascade every other front end runs (repro.service.jobs):
        # without --cache-dir it degrades to exactly the old parse-assemble-run
        cache = None
        if args.cache_dir:
            from repro.service.cache import FixpointCache

            cache = FixpointCache(root=args.cache_dir)
        outcome = _assemble(
            lambda: dispatch(config=config, program=program, cache=cache)
        )
    result, seconds = outcome.result, outcome.seconds
    if lang == "fj":
        flows = result.class_flows()
        if args.check_casts:
            from repro.fj.class_table import ClassTable

            failures = result.possible_cast_failures(ClassTable.of(program))
            if failures:
                print("casts that may fail:")
                for target, actual in failures:
                    print(f"  ({target}) applied to a {actual}")
            else:
                print("all casts proved safe")
    else:
        flows = result.flows_to()

    summary = precision_summary(flows)
    print(_flows_table(flows))
    print()
    label = f"  preset: {args.preset}" if args.preset else ""
    print(
        f"states: {result.num_states()}  store: {result.store_size()}  "
        f"mean flow: {summary['mean_flow']}  time: {seconds:.3f}s{label}"
    )
    if config.engine is not None and outcome.stats:
        stats = outcome.stats
        fused = ", fused" if config.transition == "fused" else ""
        print(
            f"engine: {config.engine} ({config.store_impl}{fused})  "
            f"evaluations: {stats.get('evaluations', '-')}  "
            f"retriggers: {stats.get('retriggers', '-')}  "
            f"dedup: {stats.get('dedup_hits', '-')}"
        )
    if cache is not None:
        print(f"cache: {'hit' if outcome.cached else 'miss'} ({outcome.tier})")
        cache.flush_stats()
    return 0


def cmd_batch(args: argparse.Namespace) -> int:
    from repro.config import preset_config
    from repro.service.batch import BatchJob, jobs_for, run_batch

    if not args.programs and not args.corpus:
        raise SystemExit("batch needs program files and/or --corpus LANG")
    presets = args.preset or ["1cfa"]

    def batch_source(lang: str, source: str) -> tuple[str, str]:
        """Spawn-safe (language, source): imp lowers to lam source text."""
        if lang == "imp":
            from repro.imp import lower_source
            from repro.lam.syntax import pp

            return "lam", pp(_assemble(lambda: lower_source(source)))
        return lang, source

    grid = []
    for path in args.programs:
        lang, source = batch_source(detect_language(path, args.lang), read_source(path))
        grid.append((lang, Path(path).name, source))
    jobs = _assemble(lambda: jobs_for(grid, presets))
    for lang in args.corpus:
        from repro.corpus import corpus_programs

        programs = _assemble(lambda: corpus_programs(lang))
        # imp corpus programs are registered lowered: the jobs are lam
        # analyses, named spawn-safely under the imp: corpus prefix
        analysis_lang = "lam" if lang == "imp" else lang
        prefix = "imp:" if lang == "imp" else ""
        for name in sorted(programs):
            for preset in presets:
                jobs.append(
                    BatchJob(
                        config=_assemble(lambda: preset_config(preset, analysis_lang)),
                        corpus=f"{prefix}{name}",
                        label=f"{lang}:{name}/{preset}",
                    )
                )

    with _tracing(args.trace):
        report = run_batch(
            jobs,
            workers=args.jobs,
            cache_dir=args.cache_dir,
            use_cache=not args.no_cache,
        )
    rows = [
        (
            outcome.job.describe(),
            "hit" if outcome.cached else "miss",
            f"{outcome.seconds:.4f}",
            str(outcome.result.num_states()),
            str(outcome.result.store_size()),
        )
        for outcome in report.outcomes
    ]
    print(fmt_table(["job", "cache", "seconds", "states", "store"], rows))
    if report.cache_stats:
        stats = report.cache_stats
        print(
            f"\ncache: {stats['hits']} hits, {stats['misses']} misses, "
            f"{stats['entries']} entries"
        )
    print(f"total: {report.total_seconds:.3f}s across {report.workers} worker(s)")
    if args.report:
        Path(args.report).write_text(report.render(include_flows=args.flows))
        print(f"wrote {args.report}")
    return 0


def cmd_fuzz(args: argparse.Namespace) -> int:
    from repro.service.fuzz import FUZZ_PRESETS, render_fuzz_report, run_fuzz

    presets = tuple(args.preset) if args.preset else FUZZ_PRESETS
    report = run_fuzz(
        seed=args.seed,
        count=args.count,
        presets=presets,
        max_steps=args.max_steps,
        max_evals=args.max_evals,
    )
    rendered = render_fuzz_report(report)
    if args.report:
        Path(args.report).write_text(rendered)
        print(f"wrote {args.report}")
    checked = ", ".join(f"{preset}: {n}" for preset, n in report["checked"].items())
    print(
        f"fuzzed {report['count']} programs (seed {report['seed']}, "
        f"digest {report['corpus_digest'][:12]}); "
        f"skipped {report['skipped']}; checked {checked}"
    )
    aborts = {p: n for p, n in report["aborted"].items() if n}
    if aborts:
        print("aborted (analysis budget): "
              + ", ".join(f"{preset}: {n}" for preset, n in aborts.items()))
    violations = report["violations"]
    if violations:
        print(f"\n{len(violations)} soundness violation(s):")
        for violation in violations:
            print(f"\n-- program {violation['index']} under {violation['preset']}:")
            print(violation["shrunk"], end="")
        return 1
    print("no soundness violations")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.serve.server import AnalysisServer

    server = AnalysisServer(
        host=args.host,
        port=args.port,
        cache_dir=args.cache_dir,
        workers=args.workers,
        queue_limit=args.queue_limit,
        hot_entries=args.hot_entries,
        default_timeout=args.timeout,
        intern_limit=args.intern_limit,
        trace_path=args.trace,
    )

    async def main() -> None:
        await server.start()
        # the "listening" line is the readiness signal scripts (and the CI
        # smoke) wait for; flush so it crosses a pipe immediately
        print(f"repro serve listening on {server.host}:{server.port}", flush=True)
        await server.wait_stopped()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        pass  # ^C is the interactive shutdown; the server flushed in stop()
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    """A ``top``-style view of a running ``repro serve`` (one shot or -w)."""
    import time

    from repro.serve.client import ServeClient, ServeError

    def fetch() -> dict | str:
        try:
            client = ServeClient(port=args.port, host=args.host, timeout=args.timeout)
        except OSError as error:
            raise SystemExit(
                f"cannot reach repro serve at {args.host}:{args.port}: {error}"
            )
        with client:
            try:
                if args.prometheus:
                    return client.call("metrics", {})["prometheus"]
                return client.call("stats", {})
            except ServeError as error:
                raise SystemExit(f"{error.name}: {error}")

    shots = args.count if args.watch else 1
    for shot in range(shots):
        if shot:
            time.sleep(args.watch)
            print()
        document = fetch()
        if args.prometheus:
            print(document, end="")
            continue
        print(
            f"repro serve @ {args.host}:{args.port}  pid {document.get('pid')}  "
            f"up {document.get('uptime_seconds', 0):.1f}s  "
            f"workers {document.get('workers')}  "
            f"inflight {document.get('inflight')}/{document.get('queue_limit')}"
        )
        for title, block in (
            ("requests", document.get("requests", {})),
            ("tiers", document.get("tiers", {})),
            ("errors", document.get("errors", {})),
            ("work", document.get("work", {})),
        ):
            if block:
                body = "  ".join(f"{key} {value}" for key, value in block.items())
                print(f"{title:>9}: {body}")
        latency = document.get("latency", {})
        if latency:
            rows = [
                (method, str(cell["count"]), f"{cell['p50']:.6f}", f"{cell['p99']:.6f}")
                for method, cell in latency.items()
            ]
            print(fmt_table(["method", "count", "p50 (s)", "p99 (s)"], rows))
        hot = document.get("hot") or {}
        cache = document.get("cache") or {}
        intern = document.get("intern") or {}
        print(
            f"      hot: entries {hot.get('entries', 0)}  hits {hot.get('hits', 0)}  "
            f"misses {hot.get('misses', 0)}  evictions {hot.get('evictions', 0)}"
        )
        if cache:
            print(
                f"    cache: entries {cache.get('entries', 0)}  "
                f"hits {cache.get('hits', 0)}  misses {cache.get('misses', 0)}  "
                f"stores {cache.get('stores', 0)}"
            )
        if intern:
            print(
                f"   intern: size {intern.get('size', 0)}  "
                f"hits {intern.get('hits', 0)}  misses {intern.get('misses', 0)}"
            )
    return 0


def cmd_client(args: argparse.Namespace) -> int:
    import json

    from repro.analysis.report import render_json
    from repro.serve.client import ServeClient, ServeError

    if args.json:
        try:
            params = json.loads(args.json)
        except json.JSONDecodeError as error:
            raise SystemExit(f"--json is not valid JSON: {error}")
        if not isinstance(params, dict):
            raise SystemExit("--json must encode an object")
    else:
        params = {}
    # convenience flags compose with (and override) --json
    if args.program:
        lang = detect_language(args.program, args.lang)
        params.update(language=lang, source=read_source(args.program))
    elif args.lang:
        params.setdefault("language", args.lang)
    if args.corpus:
        params["corpus"] = args.corpus
    if args.preset:
        params["preset"] = args.preset
    if args.flows:
        params["include_flows"] = True

    try:
        client = ServeClient(port=args.port, host=args.host, timeout=args.timeout)
    except OSError as error:
        raise SystemExit(f"cannot reach repro serve at {args.host}:{args.port}: {error}")
    with client:
        try:
            result = client.call(args.method, params)
        except ServeError as error:
            print(
                render_json({"code": error.code, "name": error.name, "message": str(error)}),
                end="",
                file=sys.stderr,
            )
            return 1
    print(render_json(result), end="")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Monadic abstract interpreters: run or analyze programs "
        "in CPS, direct-style lambda calculus, or Featherweight Java.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    trace_help = (
        "write a structured trace of this command here: Chrome trace_event "
        "JSON (chrome://tracing, ui.perfetto.dev), or JSONL if the path "
        "ends in .jsonl"
    )

    run_p = sub.add_parser("run", help="execute with the concrete machine")
    run_p.add_argument("program", help="source file, or - for stdin")
    run_p.add_argument("--lang", choices=("cps", "lam", "fj", "imp"))
    run_p.add_argument("--max-steps", type=int, default=100_000)
    run_p.add_argument("--trace", default=None, metavar="FILE", help=trace_help)
    run_p.set_defaults(fn=cmd_run)

    an_p = sub.add_parser("analyze", help="run an abstract interpretation")
    an_p.add_argument(
        "program", nargs="?", default=None, help="source file, or - for stdin"
    )
    an_p.add_argument("--lang", choices=("cps", "lam", "fj", "imp"))
    an_p.add_argument(
        "--preset",
        default=None,
        help="named analysis configuration from repro.config.PRESETS "
        "(see --list-presets); other flags override its fields",
    )
    an_p.add_argument(
        "--list-presets",
        action="store_true",
        help="print the preset registry and exit",
    )
    an_p.add_argument("--k", type=int, default=None, help="k-CFA context depth")
    an_p.add_argument(
        "--engine",
        choices=("kleene", "worklist", "depgraph"),
        default=None,
        help="fixed-point strategy over the global store "
        "(kleene = whole-domain rounds, worklist = dependency-blind frontier, "
        "depgraph = dependency-tracked re-evaluation)",
    )
    an_p.add_argument(
        "--store-impl",
        choices=("persistent", "versioned"),
        default=None,
        help="store representation behind the worklist engines "
        "(persistent = immutable snapshots, versioned = mutable store "
        "with per-address change versions; needs --engine worklist|depgraph)",
    )
    an_p.add_argument(
        "--transition",
        choices=("generic", "fused"),
        default=None,
        help="how the transition executes: the generic monadic normal "
        "form, or the staged (fused) first-order step -- identical fixed "
        "points, no per-bind monad dispatch (see PERFORMANCE.md)",
    )
    an_p.add_argument(
        "--parallelism",
        choices=("none", "sharded"),
        default=None,
        help="worklist evaluation mode: the sequential loop, or rounds "
        "sharded across --shards worker threads with private write "
        "overlays barrier-merged through the versioned store -- identical "
        "fixed points (needs --engine depgraph --store-impl versioned)",
    )
    an_p.add_argument(
        "--shards",
        type=int,
        default=None,
        help="worker count for --parallelism sharded",
    )
    an_p.add_argument(
        "--schedule",
        choices=("fifo", "priority"),
        default=None,
        help="worklist drain order: fifo (historical), or priority -- "
        "dependency-rank waves that re-run a retriggered configuration "
        "once per wave of store growth instead of once per bump -- "
        "identical fixed points, fewer evaluations on chain/loop shapes "
        "(needs --engine worklist|depgraph)",
    )
    an_p.add_argument("--shared", action="store_true", help="single-threaded store")
    an_p.add_argument("--gc", action="store_true", help="abstract garbage collection")
    an_p.add_argument("--counting", action="store_true", help="counting store")
    an_p.add_argument(
        "--check-casts", action="store_true", help="report may-fail casts (FJ only)"
    )
    an_p.add_argument(
        "--cache-dir",
        default=None,
        help="consult (and fill) a fixpoint cache directory, like batch does",
    )
    an_p.add_argument("--trace", default=None, metavar="FILE", help=trace_help)
    an_p.set_defaults(fn=cmd_analyze)

    batch_p = sub.add_parser(
        "batch",
        help="run many (program x preset) analyses through the fixpoint "
        "cache and a worker pool (the repro.service layer)",
    )
    batch_p.add_argument(
        "programs", nargs="*", default=[], help="source files (language by extension)"
    )
    batch_p.add_argument(
        "--corpus",
        action="append",
        default=[],
        metavar="LANG",
        help="add every built-in corpus program of a language (cps|lam|fj); "
        "repeatable",
    )
    batch_p.add_argument(
        "--preset",
        action="append",
        default=None,
        help="preset(s) to run each program under (repeatable; default 1cfa)",
    )
    batch_p.add_argument("--lang", choices=("cps", "lam", "fj", "imp"))
    batch_p.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for cache misses (1 = inline, no pool)",
    )
    batch_p.add_argument(
        "--cache-dir",
        default=None,
        help="fixpoint cache directory (created if missing); omit to run uncached",
    )
    batch_p.add_argument(
        "--no-cache",
        action="store_true",
        help="neither consult nor fill the cache (even with --cache-dir)",
    )
    batch_p.add_argument(
        "--report", default=None, help="write the machine-readable batch report here"
    )
    batch_p.add_argument(
        "--flows",
        action="store_true",
        help="include full flow tables in the report (larger output)",
    )
    batch_p.add_argument("--trace", default=None, metavar="FILE", help=trace_help)
    batch_p.set_defaults(fn=cmd_batch)

    fuzz_p = sub.add_parser(
        "fuzz",
        help="differential soundness fuzzing: generate seeded imp programs, "
        "run them concretely and abstractly across a preset matrix, assert "
        "abstract covers concrete (the nightly CI lane)",
    )
    fuzz_p.add_argument(
        "--seed", type=int, default=0, help="generator seed (same seed, same corpus)"
    )
    fuzz_p.add_argument(
        "--count", type=int, default=100, help="number of programs to generate"
    )
    fuzz_p.add_argument(
        "--preset",
        action="append",
        default=None,
        help="preset(s) to check coverage under (repeatable; default: the "
        "context-sensitive matrix of repro.service.fuzz.FUZZ_PRESETS)",
    )
    fuzz_p.add_argument(
        "--max-steps",
        type=int,
        default=200_000,
        help="concrete-run budget; programs exceeding it are skipped",
    )
    fuzz_p.add_argument(
        "--max-evals",
        type=int,
        default=10_000,
        help="per-preset abstract evaluation budget; exceeding it aborts "
        "(a deterministic count, so reports stay byte-identical)",
    )
    fuzz_p.add_argument(
        "--report", default=None, help="write the deterministic JSON report here"
    )
    fuzz_p.set_defaults(fn=cmd_fuzz)

    serve_p = sub.add_parser(
        "serve",
        help="run the resident analysis server: a warm in-process engine "
        "(persistent intern pool, hot fixpoint LRU over the disk cache) "
        "behind a newline-JSON socket protocol (see repro.serve)",
    )
    serve_p.add_argument("--host", default="127.0.0.1")
    serve_p.add_argument(
        "--port", type=int, default=0, help="TCP port (0 picks a free one)"
    )
    serve_p.add_argument(
        "--cache-dir",
        default=None,
        help="fixpoint cache directory backing the disk tier (created if "
        "missing); omit to serve from the hot tier alone",
    )
    serve_p.add_argument(
        "--workers", type=int, default=2, help="analysis worker threads"
    )
    serve_p.add_argument(
        "--queue-limit",
        type=int,
        default=32,
        help="max requests in flight before queue-full errors",
    )
    serve_p.add_argument(
        "--hot-entries",
        type=int,
        default=256,
        help="hot in-memory LRU capacity (fixed points)",
    )
    serve_p.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="default per-request timeout in seconds (requests may override)",
    )
    serve_p.add_argument(
        "--intern-limit",
        type=int,
        default=None,
        help="clear the intern pool (and hot tier) when it exceeds this "
        "many canonical terms; default unbounded",
    )
    serve_p.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="collect a lifetime trace of every served request's analysis "
        "phases; written on graceful shutdown (" + trace_help + ")",
    )
    serve_p.set_defaults(fn=cmd_serve)

    stats_p = sub.add_parser(
        "stats",
        help="top-style view of a running repro serve: requests, tiers, "
        "latency percentiles, hot/cache/intern occupancy",
    )
    stats_p.add_argument("--host", default="127.0.0.1")
    stats_p.add_argument("--port", type=int, required=True)
    stats_p.add_argument(
        "--watch",
        type=float,
        default=None,
        metavar="SECONDS",
        help="refresh every SECONDS (with --count shots; default one shot)",
    )
    stats_p.add_argument(
        "--count",
        type=int,
        default=10,
        help="shots to take under --watch (default 10)",
    )
    stats_p.add_argument(
        "--prometheus",
        action="store_true",
        help="print the raw Prometheus text exposition (the metrics method) "
        "instead of the rendered view",
    )
    stats_p.add_argument(
        "--timeout", type=float, default=60.0, help="socket timeout in seconds"
    )
    stats_p.set_defaults(fn=cmd_stats)

    client_p = sub.add_parser(
        "client",
        help="send one request to a running repro serve and print the "
        "JSON response",
    )
    client_p.add_argument(
        "method",
        choices=(
            "ping",
            "analyse",
            "reanalyse",
            "batch",
            "stats",
            "metrics",
            "shutdown",
        ),
    )
    client_p.add_argument(
        "program",
        nargs="?",
        default=None,
        help="source file to analyse (language by extension; shorthand for "
        "building params)",
    )
    client_p.add_argument("--host", default="127.0.0.1")
    client_p.add_argument("--port", type=int, required=True)
    client_p.add_argument(
        "--json",
        default=None,
        help="request params as a JSON object (the full surface; "
        "convenience flags below are merged over it)",
    )
    client_p.add_argument("--lang", choices=("cps", "lam", "fj", "imp"))
    client_p.add_argument("--corpus", default=None, help="corpus program name")
    client_p.add_argument("--preset", default=None)
    client_p.add_argument(
        "--flows", action="store_true", help="include full flow tables"
    )
    client_p.add_argument(
        "--timeout", type=float, default=60.0, help="socket timeout in seconds"
    )
    client_p.set_defaults(fn=cmd_client)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
