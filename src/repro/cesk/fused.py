"""The CESK transition, staged (see :mod:`repro.core.fused`).

:func:`build_cesk_fused` unfolds :func:`repro.cesk.semantics.mnext_cesk`
-- eval/continue dispatch, continuation push/pop through the store, and
the apply step -- into one first-order function over a fixed
:class:`~repro.cesk.analysis.AbstractCESKInterface`.  Nondeterminism
(variable fetches and continuation fetches) becomes iteration; store and
time effects thread directly through the interface's components.  Same
successors, same per-branch stores, same read/write logs as the monadic
path (corpus-checked).
"""

from __future__ import annotations

from typing import Any

from repro.core.fused import (
    FusedTransition,
    make_closer,
    make_pusher,
    register_fused,
    thread_bindings,
)
from repro.cesk.machine import (
    ArgF,
    Clo,
    FunF,
    HaltF,
    KontTag,
    LetF,
    PState,
    SiteContext,
    free_vars_cache,
)
from repro.lam.syntax import App, Lam, Let, Var


def build_cesk_fused(interface: Any) -> FusedTransition:
    """Stage ``mnext_cesk`` for one assembled CESK interface."""
    valloc = interface.addressing.valloc
    advance = interface.addressing.advance
    store_like = interface.store_like
    fetch = store_like.fetch
    bind = store_like.bind
    close = make_closer(Clo, free_vars_cache)
    push = make_pusher(PState, KontTag, valloc, bind)

    def apply_proc(out: list, site: App, proc: Clo, arg_values: tuple,
                   parent_ka: Any, guts: Any, store: Any) -> None:
        """The apply step: tick, alloc, bind parameters, enter the body."""
        params = proc.lam.params
        if len(params) != len(arg_values):
            return  # stuck: arity mismatch
        guts2 = advance(proc, SiteContext(site), guts)
        addrs = [valloc(p, guts2) for p in params]
        store2 = thread_bindings(store_like, store, addrs, arg_values)
        nxt = PState(proc.lam.body, proc.env.update(zip(params, addrs)), parent_ka)
        out.append(((nxt, guts2), store2))

    def step(pstate: PState, guts: Any, store: Any) -> list:
        ctrl = pstate.ctrl
        env = pstate.env
        ka = pstate.ka
        out: list = []

        # -- eval mode ------------------------------------------------------
        if isinstance(ctrl, Var):
            if ctrl.name not in env:
                return []
            for value in fetch(store, env[ctrl.name]):
                out.append(((PState(value, env, ka), guts), store))
            return out
        if isinstance(ctrl, Lam):
            return [((PState(close(ctrl, env), env, ka), guts), store)]
        if isinstance(ctrl, Let):
            push(out, ctrl, LetF(ctrl.var, ctrl.body, env, ka), ctrl.rhs,
                 env, guts, store)
            return out
        if isinstance(ctrl, App):
            push(out, ctrl, FunF(ctrl, ctrl.args, env, ka), ctrl.fun,
                 env, guts, store)
            return out

        # -- return mode ----------------------------------------------------
        if isinstance(ctrl, Clo):
            for frame in fetch(store, ka):
                if isinstance(frame, HaltF):
                    out.append(((pstate, guts), store))  # final states self-loop
                elif isinstance(frame, LetF):
                    addr = valloc(frame.var, guts)
                    store2 = bind(store, addr, frozenset([ctrl]))
                    nxt = PState(
                        frame.body, frame.env.set(frame.var, addr), frame.parent
                    )
                    out.append(((nxt, guts), store2))
                elif isinstance(frame, FunF):
                    if not frame.args:
                        apply_proc(out, frame.site, ctrl, (), frame.parent,
                                   guts, store)
                    else:
                        next_frame = ArgF(frame.site, ctrl, frame.args[1:], (),
                                          frame.env, frame.parent)
                        push(out, frame.args[0], next_frame, frame.args[0],
                             frame.env, guts, store)
                elif isinstance(frame, ArgF):
                    done = frame.done + (ctrl,)
                    if not frame.remaining:
                        apply_proc(out, frame.site, frame.fun_val, done,
                                   frame.parent, guts, store)
                    else:
                        next_frame = ArgF(frame.site, frame.fun_val,
                                          frame.remaining[1:], done,
                                          frame.env, frame.parent)
                        push(out, frame.remaining[0], next_frame,
                             frame.remaining[0], frame.env, guts, store)
                # unrecognized frames are stuck: the branch is pruned
            return out
        return []  # stuck: unrecognized control

    return FusedTransition(step, language="lam")


register_fused("lam", build_cesk_fused)
