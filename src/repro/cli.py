"""Command-line front end: run and analyze programs in all three languages.

::

    python -m repro run     PROGRAM.cps  --lang cps
    python -m repro analyze PROGRAM.lam  --lang lam --k 1 --gc
    python -m repro analyze PROGRAM.fj   --lang fj  --k 0 --check-casts
    python -m repro analyze PROGRAM.cps  --engine depgraph

``analyze`` prints the reached-state count, the flows-to (or class-flow)
table and, where requested, counting/cast diagnostics.  The language
defaults from the file extension (``.cps``, ``.lam``, ``.fj``).

``--engine`` selects the fixed-point strategy over the global-store
domain: ``kleene`` (whole-domain rounds), ``worklist`` (frontier-driven,
dependency-blind) or ``depgraph`` (frontier-driven, re-evaluating only
configurations whose store dependencies changed).  All three compute
identical results; ``depgraph`` is the fast one.  ``--store-impl``
picks the store representation behind the worklist engines:
``persistent`` (immutable PMap snapshots) or ``versioned`` (one mutable
store with per-address change versions -- O(delta) per evaluation, the
fastest configuration; see PERFORMANCE.md).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis.report import fmt_table, precision_summary, timed


def detect_language(path: str, explicit: str | None) -> str:
    if explicit:
        return explicit
    suffix = Path(path).suffix.lstrip(".")
    if suffix in ("cps", "lam", "fj"):
        return suffix
    raise SystemExit(
        f"cannot infer language from {path!r}; pass --lang cps|lam|fj"
    )


def read_source(path: str) -> str:
    if path == "-":
        return sys.stdin.read()
    return Path(path).read_text()


def cmd_run(args: argparse.Namespace) -> int:
    lang = detect_language(args.program, args.lang)
    source = read_source(args.program)
    if lang == "cps":
        from repro.cps import interpret, parse_program

        final = interpret(parse_program(source), max_steps=args.max_steps)
        print(f"final state: {final!r}")
    elif lang == "lam":
        from repro.cesk import evaluate
        from repro.lam import parse_expr

        value = evaluate(parse_expr(source), max_steps=args.max_steps)
        print(f"value: {value.lam!r}")
    else:
        from repro.fj import evaluate_fj, parse_program, typecheck_program

        program = parse_program(source)
        check = typecheck_program(program)
        for warning in check.warnings:
            print(f"warning: {warning}", file=sys.stderr)
        value = evaluate_fj(program, max_steps=args.max_steps)
        print(f"value: new {value.cls}(...)")
    return 0


def _flows_table(flows: dict) -> str:
    rows = [
        (var, len(vals), ", ".join(sorted(repr(v) for v in vals))[:60])
        for var, vals in sorted(flows.items())
    ]
    return fmt_table(["variable", "count", "reaching values"], rows)


def _assemble(thunk):
    """Turn invalid flag combinations (library ``ValueError``s) into exits."""
    try:
        return thunk()
    except ValueError as error:
        raise SystemExit(str(error))


def cmd_analyze(args: argparse.Namespace) -> int:
    lang = detect_language(args.program, args.lang)
    source = read_source(args.program)
    engine = args.engine
    store_impl = args.store_impl

    if lang == "cps":
        from repro.core.store import CountingStore
        from repro.core.addresses import KCFA, ZeroCFA
        from repro.cps.analysis import analyse
        from repro.cps.parser import parse_program

        program = parse_program(source)
        addressing = (
            ZeroCFA() if args.k == 0 and not args.shared and engine is None else KCFA(args.k)
        )
        analysis = _assemble(
            lambda: analyse(
                addressing,
                store_like=CountingStore() if args.counting else None,
                shared=args.shared,
                gc=args.gc,
                engine=engine,
                store_impl=store_impl,
            )
        )
        result, seconds = timed(lambda: analysis.run(program, worklist=not args.shared))
        flows = result.flows_to()
    elif lang == "lam":
        from repro.core.addresses import KCFA
        from repro.core.store import CountingStore
        from repro.cesk.analysis import analyse_cesk
        from repro.lam.parser import parse_expr

        expr = parse_expr(source)
        analysis = _assemble(
            lambda: analyse_cesk(
                KCFA(args.k),
                store_like=CountingStore() if args.counting else None,
                shared=args.shared,
                gc=args.gc,
                engine=engine,
                store_impl=store_impl,
            )
        )
        result, seconds = timed(lambda: analysis.run(expr, worklist=not args.shared))
        flows = result.flows_to()
    else:
        from repro.core.addresses import KCFA
        from repro.core.store import CountingStore
        from repro.fj.analysis import analyse_fj
        from repro.fj.class_table import ClassTable
        from repro.fj.parser import parse_program as parse_fj
        from repro.fj.typecheck import typecheck_program

        program = parse_fj(source)
        check = typecheck_program(program)
        for warning in check.warnings:
            print(f"warning: {warning}", file=sys.stderr)
        analysis = _assemble(
            lambda: analyse_fj(
                program,
                KCFA(args.k),
                store_like=CountingStore() if args.counting else None,
                shared=args.shared,
                gc=args.gc,
                engine=engine,
                store_impl=store_impl,
            )
        )
        result, seconds = timed(lambda: analysis.run(program, worklist=not args.shared))
        flows = result.class_flows()
        if args.check_casts:
            failures = result.possible_cast_failures(ClassTable.of(program))
            if failures:
                print("casts that may fail:")
                for target, actual in failures:
                    print(f"  ({target}) applied to a {actual}")
            else:
                print("all casts proved safe")

    summary = precision_summary(flows)
    print(_flows_table(flows))
    print()
    print(
        f"states: {result.num_states()}  store: {result.store_size()}  "
        f"mean flow: {summary['mean_flow']}  time: {seconds:.3f}s"
    )
    if engine is not None and analysis.last_stats:
        stats = analysis.last_stats
        print(
            f"engine: {engine} ({store_impl})  "
            f"evaluations: {stats.get('evaluations', '-')}  "
            f"retriggers: {stats.get('retriggers', '-')}"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Monadic abstract interpreters: run or analyze programs "
        "in CPS, direct-style lambda calculus, or Featherweight Java.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="execute with the concrete machine")
    run_p.add_argument("program", help="source file, or - for stdin")
    run_p.add_argument("--lang", choices=("cps", "lam", "fj"))
    run_p.add_argument("--max-steps", type=int, default=100_000)
    run_p.set_defaults(fn=cmd_run)

    an_p = sub.add_parser("analyze", help="run an abstract interpretation")
    an_p.add_argument("program", help="source file, or - for stdin")
    an_p.add_argument("--lang", choices=("cps", "lam", "fj"))
    an_p.add_argument("--k", type=int, default=1, help="k-CFA context depth")
    an_p.add_argument(
        "--engine",
        choices=("kleene", "worklist", "depgraph"),
        default=None,
        help="fixed-point strategy over the global store "
        "(kleene = whole-domain rounds, worklist = dependency-blind frontier, "
        "depgraph = dependency-tracked re-evaluation)",
    )
    an_p.add_argument(
        "--store-impl",
        choices=("persistent", "versioned"),
        default="persistent",
        help="store representation behind the worklist engines "
        "(persistent = immutable snapshots, versioned = mutable store "
        "with per-address change versions; needs --engine worklist|depgraph)",
    )
    an_p.add_argument("--shared", action="store_true", help="single-threaded store")
    an_p.add_argument("--gc", action="store_true", help="abstract garbage collection")
    an_p.add_argument("--counting", action="store_true", help="counting store")
    an_p.add_argument(
        "--check-casts", action="store_true", help="report may-fail casts (FJ only)"
    )
    an_p.set_defaults(fn=cmd_analyze)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
