"""CESK machine states, values and continuation frames.

Following "Abstracting Abstract Machines", continuations live in the
store: a state is ``(control, env, kont-address)`` and the store maps
kont addresses to *sets* of frames, so bounding the address space
bounds the whole state space.  Frames and closures are both storable
values and share the one store.

Control is either an expression to evaluate (*eval* mode) or a value
being returned (*return* mode); the two are distinguished by type.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.intern import hash_consed
from typing import Any, Hashable

from repro.lam.syntax import App, Expr, Lam
from repro.util.pcollections import PMap, pmap

_FREE_VARS_CACHE: dict = {}


def free_vars_cache(expr: Expr) -> frozenset:
    """Memoized free variables (terms are immutable)."""
    try:
        return _FREE_VARS_CACHE[expr]
    except KeyError:
        from repro.lam.syntax import free_vars

        result = free_vars(expr)
        _FREE_VARS_CACHE[expr] = result
        return result


@hash_consed
@dataclass(frozen=True)
class Clo:
    """A closure: the machine's only *proper* value."""

    lam: Lam
    env: PMap

    def __repr__(self) -> str:
        return f"Clo({self.lam!r})"


class Frame:
    """A continuation frame (a storable value)."""

    __slots__ = ()


@hash_consed
@dataclass(frozen=True)
class HaltF(Frame):
    """The empty continuation."""

    def __repr__(self) -> str:
        return "<halt>"


@hash_consed
@dataclass(frozen=True)
class LetF(Frame):
    """``(let ((x [.])) body)``: awaiting the right-hand side's value."""

    var: str
    body: Expr
    env: PMap
    parent: Hashable

    def __repr__(self) -> str:
        return f"<let {self.var}>"


@hash_consed
@dataclass(frozen=True)
class FunF(Frame):
    """``([.] e1 ... en)``: awaiting the operator's value."""

    site: App
    args: tuple[Expr, ...]
    env: PMap
    parent: Hashable

    def __repr__(self) -> str:
        return f"<fun {len(self.args)} args>"


@hash_consed
@dataclass(frozen=True)
class ArgF(Frame):
    """``(f v1 ... [.] e ... )``: awaiting the next argument's value."""

    site: App
    fun_val: Clo
    remaining: tuple[Expr, ...]
    done: tuple[Any, ...]
    env: PMap
    parent: Hashable

    def __repr__(self) -> str:
        return f"<arg {len(self.done)}/{len(self.done) + 1 + len(self.remaining)}>"


@hash_consed
@dataclass(frozen=True)
class KontTag:
    """The pseudo-variable under which a continuation is allocated.

    ``Addressable.valloc`` takes a variable; continuation addresses reuse
    the same allocator (and hence the same polyvariance policy) by
    allocating under a tag naming the expression whose evaluation pushed
    the frame -- the standard AAM move, here falling out of the shared
    ``Addressable`` abstraction.
    """

    site: Expr

    def __repr__(self) -> str:
        return f"kont[{self.site!r}]"


@hash_consed
@dataclass(frozen=True)
class PState:
    """A partial CESK state: control, environment, continuation address.

    Time and the store live in the monad, exactly as for CPS (paper
    3.2-3.3).  ``context_key`` names the current control point for the
    semantics-independent addressing policies.
    """

    ctrl: Any  # Expr (eval mode) or Clo (return mode)
    env: PMap
    ka: Hashable

    def is_eval(self) -> bool:
        return isinstance(self.ctrl, Expr)

    def is_return(self) -> bool:
        return isinstance(self.ctrl, Clo)

    def context_key(self) -> Hashable:
        if isinstance(self.ctrl, Expr):
            return self.ctrl
        return self.ctrl.lam

    def __repr__(self) -> str:
        mode = "ev" if self.is_eval() else "ret"
        return f"<{mode} {self.ctrl!r} | ka={self.ka!r}>"


@hash_consed
@dataclass(frozen=True)
class SiteContext:
    """A :class:`~repro.core.addresses.HasContextKey` carrier for call sites.

    At application time the machine is in return mode, so the state's own
    control is a value; the call site recorded in the frame is the right
    context key for ``tick``/``advance``.
    """

    site: Expr

    def context_key(self) -> Hashable:
        return self.site


HALT_ADDRESS = ("halt-kont",)
"""The distinguished address at which the halt frame is bound."""


def inject(expr: Expr) -> PState:
    """The initial machine state for a closed program."""
    return PState(expr, pmap(), HALT_ADDRESS)
