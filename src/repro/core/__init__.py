"""The paper's meta-level: semantics-independent analysis machinery.

This package is the upper half of the paper's Figure 3.  Everything here
is reusable, unchanged, by each language definition (CPS lambda calculus,
direct-style lambda calculus / CESK, Featherweight Java):

* :mod:`repro.core.lattice`   -- complete lattices and instances (5.2)
* :mod:`repro.core.monads`    -- a monad library with transformers (3, 5.3)
* :mod:`repro.core.fixpoint`  -- Kleene iteration, ``Collecting``, widening (5.2)
* :mod:`repro.core.galois`    -- Galois connections; store-sharing alpha/gamma (6.5)
* :mod:`repro.core.addresses` -- ``Addressable``: polyvariance & context (6.1)
* :mod:`repro.core.store`     -- ``StoreLike`` & counting stores (6.2, 6.3)
* :mod:`repro.core.gc`        -- abstract garbage collection (6.4)
* :mod:`repro.core.driver`    -- ``run_analysis``: the three degrees of freedom (5.2)
"""

from repro.core.lattice import (
    AbsNat,
    Lattice,
    MapLattice,
    PairLattice,
    PowersetLattice,
    UnitLattice,
    join_with,
)
from repro.core.monads import ListMonad, StateT, StorePassing
from repro.core.fixpoint import (
    ENGINES,
    STORE_IMPLS,
    Collecting,
    explore_fp,
    global_store_explore,
    kleene_iterate,
)
from repro.core.addresses import Addressable, ConcreteAddressing, KCFA, ZeroCFA
from repro.core.store import (
    BasicStore,
    CountingStore,
    MutableStore,
    RecordingStore,
    StoreLike,
    VersionedStore,
)
from repro.core.driver import run_analysis, run_with_engine

__all__ = [
    "AbsNat",
    "Addressable",
    "BasicStore",
    "Collecting",
    "ConcreteAddressing",
    "CountingStore",
    "ENGINES",
    "KCFA",
    "Lattice",
    "ListMonad",
    "MapLattice",
    "MutableStore",
    "PairLattice",
    "PowersetLattice",
    "RecordingStore",
    "STORE_IMPLS",
    "StateT",
    "StoreLike",
    "StorePassing",
    "UnitLattice",
    "VersionedStore",
    "ZeroCFA",
    "explore_fp",
    "global_store_explore",
    "join_with",
    "kleene_iterate",
    "run_analysis",
    "run_with_engine",
]
