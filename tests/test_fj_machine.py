"""The concrete FJ machine and the abstract FJ analysis family."""

import pytest

from repro.core.lattice import AbsNat
from repro.fj.analysis import (
    analyse_fj_counting,
    analyse_fj_gc,
    analyse_fj_kcfa,
    analyse_fj_shared,
    analyse_fj_zerocfa,
)
from repro.fj.class_table import ClassTable
from repro.fj.concrete import FJTimeout, evaluate_fj, evaluate_fj_trace, evaluate_fj_with_heap
from repro.fj.parser import parse_program
from repro.fj.semantics import FJCastError, FJStuck
from repro.corpus.fj_programs import PROGRAMS, dispatch_chain

TERMINATING = ["pair", "id-twice", "animals", "visitor", "safe-cast"]


class TestConcreteMachine:
    def test_pair(self):
        assert evaluate_fj(PROGRAMS["pair"]).cls == "B"

    def test_animals_dispatch(self):
        assert evaluate_fj(PROGRAMS["animals"]).cls == "Bark"

    def test_visitor_double_dispatch(self):
        assert evaluate_fj(PROGRAMS["visitor"]).cls == "TagC"

    def test_safe_cast_succeeds(self):
        assert evaluate_fj(PROGRAMS["safe-cast"]).cls == "A"

    def test_bad_cast_raises(self):
        with pytest.raises(FJCastError):
            evaluate_fj(PROGRAMS["bad-cast"])

    def test_field_reads_through_heap(self):
        value, heap = evaluate_fj_with_heap(PROGRAMS["pair"])
        assert value.cls == "B"

    def test_trace_shape(self):
        trace = evaluate_fj_trace(PROGRAMS["pair"])
        assert trace[0].is_eval()
        assert trace[-1].is_return()

    def test_infinite_recursion_times_out(self):
        p = parse_program(
            """
            class Loop extends Object {
              Object go() { return this.go(); }
            }
            new Loop().go()
            """
        )
        with pytest.raises(FJTimeout):
            evaluate_fj(p, max_steps=500)

    def test_missing_method_sticks(self):
        p = parse_program("class A extends Object { } new A().nope()")
        with pytest.raises(FJStuck):
            evaluate_fj(p)

    def test_inherited_method_dispatch(self):
        p = parse_program(
            """
            class Base extends Object { Object me() { return this; } }
            class Derived extends Base { }
            new Derived().me()
            """
        )
        assert evaluate_fj(p).cls == "Derived"

    def test_field_inheritance_layout(self):
        p = parse_program(
            """
            class X extends Object { }
            class Y extends Object { }
            class A extends Object { Object a; }
            class B extends A { Object b; }
            new B(new X(), new Y()).b
            """
        )
        assert evaluate_fj(p).cls == "Y"


class TestAbstractFJ:
    def test_animals_zerocfa_merges_dispatch(self):
        r = analyse_fj_zerocfa(PROGRAMS["animals"])
        assert r.final_classes() == frozenset(["Bark", "Meow"])

    def test_animals_onecfa_exact(self):
        r = analyse_fj_kcfa(PROGRAMS["animals"], 1)
        assert r.final_classes() == frozenset(["Bark"])

    def test_final_classes_cover_concrete(self):
        for name in TERMINATING:
            concrete = evaluate_fj(PROGRAMS[name]).cls
            for k in (0, 1):
                assert concrete in analyse_fj_kcfa(PROGRAMS[name], k).final_classes()

    def test_class_flows_shape(self):
        flows = analyse_fj_zerocfa(PROGRAMS["animals"]).class_flows()
        assert flows["a"] == frozenset(["Dog", "Cat"])

    def test_infinite_recursion_terminates_abstractly(self):
        p = parse_program(
            """
            class Loop extends Object {
              Object go() { return this.go(); }
            }
            new Loop().go()
            """
        )
        r = analyse_fj_zerocfa(p)
        assert r.num_states() > 1
        assert not r.final_classes()

    def test_shared_covers_per_state(self):
        for name in ("pair", "animals"):
            per_state = analyse_fj_kcfa(PROGRAMS[name], 1)
            shared = analyse_fj_shared(PROGRAMS[name], 1)
            for key, classes in per_state.class_flows().items():
                assert classes <= shared.class_flows().get(key, frozenset())

    def test_dispatch_chain_polyvariance(self):
        program = dispatch_chain(3)
        flows0 = analyse_fj_zerocfa(program).class_flows()
        # monovariant: the shared id parameter merges all three payloads
        assert flows0["x"] == frozenset(["P0", "P1", "P2"])
        r1 = analyse_fj_kcfa(program, 1)
        per_addr_x = [
            frozenset(v.cls for v in r1.store_like.fetch(r1.global_store(), a))
            for a in r1.store_like.addresses(r1.global_store())
            if getattr(a, "var", None) == "x"
        ]
        assert per_addr_x and all(len(classes) == 1 for classes in per_addr_x)

    def test_gc_shrinks_or_preserves_store(self):
        for name in ("pair", "animals"):
            plain = analyse_fj_kcfa(PROGRAMS[name], 1)
            gc = analyse_fj_gc(PROGRAMS[name], 1)
            assert gc.store_size() <= plain.store_size()
            concrete = evaluate_fj(PROGRAMS[name]).cls
            assert concrete in gc.final_classes()

    def test_counting_straightline_singletons(self):
        r = analyse_fj_counting(PROGRAMS["pair"], 1)
        store = r.global_store()
        counting = r.store_like
        counts = [counting.count(store, a) for a in counting.addresses(store)]
        assert AbsNat.ONE in counts

    def test_counting_preserves_class_flows(self):
        plain = analyse_fj_kcfa(PROGRAMS["animals"], 1).class_flows()
        counted = analyse_fj_counting(PROGRAMS["animals"], 1).class_flows()
        assert plain == counted

    def test_list_walk_recursion(self):
        program = PROGRAMS["list-walk"]
        assert evaluate_fj(program).cls == "Nil"
        r = analyse_fj_kcfa(program, 1)
        # the traversal's recursive dispatch makes Cons a possible result
        # abstractly (the tail address merges), but Nil must be covered
        assert "Nil" in r.final_classes()

    def test_list_walk_heap_structure(self):
        program = PROGRAMS["list-walk"]
        flows = analyse_fj_kcfa(program, 1).class_flows()
        # the Cons.tail field holds both list spines
        assert flows["Cons.tail"] >= frozenset(["Nil"])

    def test_church_bool_dispatch_precision(self):
        program = PROGRAMS["church-bool"]
        assert evaluate_fj(program).cls == "Yes"
        r0 = analyse_fj_zerocfa(program)
        r1 = analyse_fj_kcfa(program, 1)
        assert r0.final_classes() == frozenset(["Yes", "No"])
        assert r1.final_classes() == frozenset(["Yes"])

    def test_cast_safety_analysis(self):
        table = ClassTable.of(PROGRAMS["safe-cast"])
        safe = analyse_fj_kcfa(PROGRAMS["safe-cast"], 1)
        assert not safe.possible_cast_failures(table)
        table_bad = ClassTable.of(PROGRAMS["bad-cast"])
        bad = analyse_fj_kcfa(PROGRAMS["bad-cast"], 1)
        assert ("A", "B") in bad.possible_cast_failures(table_bad)
