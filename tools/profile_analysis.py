"""cProfile any preset x workload: where does an analysis spend its time?

The staging work (PERFORMANCE.md, "The fused transition") was guided by
exactly this view: the generic transition's profile is a wall of
``StateT.bind``/``<lambda>`` frames, the fused one is flat.  Keep it that
way -- profile before optimizing::

    PYTHONPATH=src python tools/profile_analysis.py --preset 1cfa \\
        --lang cps --workload id-chain-200
    PYTHONPATH=src python tools/profile_analysis.py --preset 1cfa-fused \\
        --lang lam --workload church-two-two --top 15
    PYTHONPATH=src python tools/profile_analysis.py --lang fj \\
        --workload visitor --engine depgraph --store-impl versioned \\
        --transition fused --sort tottime

Workloads are corpus program names (``repro.corpus``); for CPS the
synthetic ``id-chain-N`` family is also understood.  Flags mirror the
CLI: ``--preset`` names a registry entry, and the fine-grained flags
(``--k``, ``--engine``, ``--store-impl``, ``--transition``, ``--gc``,
``--counting``) override its fields.  One deliberate difference from
``repro analyze``: without ``--preset`` this tool defaults to the fast
global-store configuration (``depgraph`` + ``versioned``), because
that is the hot path worth profiling -- ``repro analyze`` without flags
runs the per-state domain instead.  Pass ``--engine``/``--store-impl``
explicitly to profile another point.  Everything assembles through
``repro.config``, so a profiled configuration is exactly what the CLI
and tests run for the same settings.

Stdlib only (cProfile/pstats), like the rest of the tooling.
"""

from __future__ import annotations

import argparse
import cProfile
import pstats
import sys


def _corpus(lang: str) -> dict:
    if lang == "cps":
        from repro.corpus.cps_programs import PROGRAMS

        return dict(PROGRAMS)
    if lang == "lam":
        from repro.corpus.lam_programs import PROGRAMS

        return dict(PROGRAMS)
    from repro.corpus.fj_programs import PROGRAMS

    return dict(PROGRAMS)


def resolve_workload(lang: str, name: str):
    """A corpus program by name; CPS also accepts synthetic ``id-chain-N``."""
    if lang == "cps" and name.startswith("id-chain-"):
        from repro.corpus.cps_programs import id_chain

        return id_chain(int(name.rsplit("-", 1)[1]))
    programs = _corpus(lang)
    try:
        return programs[name]
    except KeyError:
        known = ", ".join(sorted(programs))
        raise SystemExit(
            f"unknown {lang} workload {name!r}; choose one of: {known}"
            + (" (or id-chain-N)" if lang == "cps" else "")
        ) from None


def build_analysis(args: argparse.Namespace, program):
    from repro.config import AnalysisConfig, assemble, build_config
    from repro.core.store import CountingStore

    if args.preset:
        config = build_config(
            args.lang,
            preset=args.preset,
            store_like=CountingStore() if args.counting else None,
            gc=True if args.gc else None,
            engine=args.engine,
            store_impl=args.store_impl,
            transition=args.transition,
        )
        if args.k is not None:
            config = config.replace(k=args.k).validated()
    else:
        engine = args.engine or "depgraph"
        # kleene pairs only with the persistent store; mirror the CLI's
        # fallback instead of crashing on the documented --engine kleene
        default_impl = "persistent" if engine == "kleene" else "versioned"
        config = AnalysisConfig(
            language=args.lang,
            k=1 if args.k is None else args.k,
            widening="store",
            engine=engine,
            store_impl=args.store_impl or default_impl,
            gc=args.gc,
            counting=args.counting,
            transition=args.transition or "generic",
        ).validated()
    return assemble(config, program=program), config


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--lang", required=True, choices=("cps", "lam", "fj"))
    parser.add_argument(
        "--workload",
        required=True,
        help="corpus program name (CPS also accepts id-chain-N)",
    )
    parser.add_argument("--preset", default=None, help="repro.config.PRESETS entry")
    parser.add_argument("--k", type=int, default=None)
    parser.add_argument(
        "--engine",
        choices=("kleene", "worklist", "depgraph"),
        help="fixed-point engine (default without --preset: depgraph, "
        "the hot path -- unlike `repro analyze`, which defaults per-state)",
    )
    parser.add_argument(
        "--store-impl",
        choices=("persistent", "versioned"),
        help="store representation (default without --preset: versioned)",
    )
    parser.add_argument("--transition", choices=("generic", "fused"))
    parser.add_argument("--gc", action="store_true")
    parser.add_argument("--counting", action="store_true")
    parser.add_argument("--top", type=int, default=25, help="rows to print")
    parser.add_argument(
        "--sort",
        default="cumulative",
        choices=("cumulative", "tottime", "calls"),
        help="pstats sort order",
    )
    parser.add_argument(
        "--repeat", type=int, default=1, help="profile N back-to-back runs"
    )
    args = parser.parse_args(argv)

    program = resolve_workload(args.lang, args.workload)
    analysis, config = build_analysis(args, program)
    print(f"profiling {config.describe()} on {args.lang}/{args.workload}", file=sys.stderr)

    profiler = cProfile.Profile()
    profiler.enable()
    for _ in range(args.repeat):
        analysis.run(program)
    profiler.disable()

    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.strip_dirs().sort_stats(args.sort).print_stats(args.top)
    if analysis.last_stats:
        print(f"engine stats: {analysis.last_stats}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
