"""Greedy structural shrinking of ``imp`` programs.

When the differential fuzz harness (:mod:`repro.service.fuzz`) finds a
soundness violation, the raw generated program is rarely the story --
:func:`shrink` reduces it to a *local minimum*: a program that still
satisfies the caller's predicate ("still violates") but where no single
shrink step does.

The search is deterministic greedy descent: enumerate single-edit
variants in a fixed order -- statement deletion first (the biggest
reductions), then control-flow hoisting (a branch or loop replaced by
its body), then expression simplification (replace by an atom or a
subexpression, halve literals) -- and restart from the first variant the
predicate accepts.  The predicate is called behind a guard that treats
*any* exception as rejection, so variants that break scoping (deleting
a ``let`` whose variable is still read) fall out of the search without
special casing; since generated programs are closed by construction,
every accepted variant is again a valid program.

``max_checks`` bounds the total number of predicate calls (each one
typically replays a concrete run plus a preset matrix), making the
worst-case shrink cost explicit at the call site.
"""

from __future__ import annotations

from typing import Callable, Iterator

from repro.imp.syntax import (
    EBinOp,
    EBool,
    ECall,
    EFn,
    EInt,
    EUnary,
    EVar,
    Expr,
    Program,
    SAssign,
    SExpr,
    SIf,
    SLet,
    SReturn,
    SWhile,
    Stmt,
    program_size,
)

_ATOMS = (EInt(0), EInt(1), EBool(False), EBool(True))


def _expr_variants(expr: Expr) -> Iterator[Expr]:
    """Single-step simplifications of one expression, simplest first."""
    for atom in _ATOMS:
        if atom != expr:
            yield atom
    if isinstance(expr, EInt):
        if expr.value > 1:
            yield EInt(expr.value // 2)
            yield EInt(expr.value - 1)
        return
    if isinstance(expr, (EBool, EVar)):
        return
    if isinstance(expr, EUnary):
        yield expr.operand
        for sub in _expr_variants(expr.operand):
            yield EUnary(expr.op, sub)
    elif isinstance(expr, EBinOp):
        yield expr.lhs
        yield expr.rhs
        for sub in _expr_variants(expr.lhs):
            yield EBinOp(expr.op, sub, expr.rhs)
        for sub in _expr_variants(expr.rhs):
            yield EBinOp(expr.op, expr.lhs, sub)
    elif isinstance(expr, ECall):
        yield from expr.args
        for index, arg in enumerate(expr.args):
            for sub in _expr_variants(arg):
                yield ECall(
                    expr.fun, expr.args[:index] + (sub,) + expr.args[index + 1 :]
                )
    elif isinstance(expr, EFn):
        for body in _block_variants(expr.body):
            yield EFn(expr.params, body)


def _with_expr(stmt: Stmt, expr: Expr) -> Stmt:
    """The statement with its direct expression replaced."""
    if isinstance(stmt, SLet):
        return SLet(stmt.name, expr)
    if isinstance(stmt, SAssign):
        return SAssign(stmt.name, expr)
    if isinstance(stmt, SReturn):
        return SReturn(expr)
    if isinstance(stmt, SExpr):
        return SExpr(expr)
    if isinstance(stmt, SIf):
        return SIf(expr, stmt.then, stmt.els)
    if isinstance(stmt, SWhile):
        return SWhile(expr, stmt.body)
    raise TypeError(f"not an imp statement: {stmt!r}")


def _stmt_expr(stmt: Stmt) -> Expr | None:
    if isinstance(stmt, (SLet, SAssign)):
        return stmt.rhs
    if isinstance(stmt, (SReturn, SExpr)):
        return stmt.value
    if isinstance(stmt, (SIf, SWhile)):
        return stmt.cond
    return None


def _stmt_variants(stmt: Stmt) -> Iterator[Stmt | tuple[Stmt, ...]]:
    """Single-step rewrites of one statement; tuples splice into the block."""
    if isinstance(stmt, SIf):
        yield stmt.then  # keep only the taken branch
        yield stmt.els
        for block in _block_variants(stmt.then):
            yield SIf(stmt.cond, block, stmt.els)
        for block in _block_variants(stmt.els):
            yield SIf(stmt.cond, stmt.then, block)
    elif isinstance(stmt, SWhile):
        yield stmt.body  # one unrolled iteration, no loop
        for block in _block_variants(stmt.body):
            yield SWhile(stmt.cond, block)
    expr = _stmt_expr(stmt)
    if expr is not None:
        for sub in _expr_variants(expr):
            yield _with_expr(stmt, sub)


def _block_variants(block: tuple[Stmt, ...]) -> Iterator[tuple[Stmt, ...]]:
    """Single-edit variants of a statement block: delete, then rewrite."""
    for index in range(len(block)):
        yield block[:index] + block[index + 1 :]
    for index, stmt in enumerate(block):
        for variant in _stmt_variants(stmt):
            splice = variant if isinstance(variant, tuple) else (variant,)
            yield block[:index] + splice + block[index + 1 :]


def variants(program: Program) -> Iterator[Program]:
    """All single-edit shrink candidates of a program, deterministic order."""
    for block in _block_variants(program.body):
        yield Program(block)


def shrink(
    program: Program,
    predicate: Callable[[Program], bool],
    max_checks: int = 2000,
) -> Program:
    """Greedily reduce ``program`` while ``predicate`` stays true.

    Returns a 1-minimal program when the check budget allows: no single
    deletion, hoist, or expression simplification preserves the
    predicate.  ``predicate`` exceptions count as rejection (and against
    the budget), so it may assume structurally valid input only.
    """

    def holds(candidate: Program) -> bool:
        try:
            return bool(predicate(candidate))
        except Exception:
            return False

    checks = 0
    current = program
    progress = True
    while progress and checks < max_checks:
        progress = False
        for candidate in variants(current):
            if checks >= max_checks:
                break
            if program_size(candidate) >= program_size(current):
                continue
            checks += 1
            if holds(candidate):
                current = candidate
                progress = True
                break
    return current
