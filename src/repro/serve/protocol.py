"""The server's wire format: newline-delimited JSON requests and responses.

One request per line, one response per line, UTF-8, in request order per
connection.  The shapes follow JSON-RPC 2.0 closely enough to be
unsurprising (``method``/``params``/``id``; ``result`` xor ``error``
with numeric codes in the JSON-RPC ranges) without claiming the full
spec -- there are no notifications and no request batching on the wire
(the ``batch`` *method* covers the grid use case with better semantics:
one response document, shared cache accounting).

Requests::

    {"id": 1, "method": "analyse", "params": {"language": "cps", ...}}

Responses::

    {"id": 1, "result": {...}}
    {"id": 1, "error": {"code": -32602, "name": "invalid-params",
                        "message": "..."}}

Determinism is part of the contract: responses are rendered with sorted
keys through the same :func:`repro.analysis.report.json_ready`
normalization the batch reports use, so the golden protocol tests can
pin response bytes (masking only the declared-volatile fields such as
timings).  Every error is a *response* -- a malformed line gets a
``parse-error`` with ``id: null`` rather than a dropped connection, so a
client is never left waiting on a request the server silently discarded.
"""

from __future__ import annotations

import json
from typing import Any

from repro.analysis.report import json_ready

#: Error codes, JSON-RPC-aligned where JSON-RPC has a word for it and in
#: the implementation-defined -320xx band where it does not.
PARSE_ERROR = -32700
INVALID_REQUEST = -32600
METHOD_NOT_FOUND = -32601
INVALID_PARAMS = -32602
ANALYSIS_ERROR = -32000
TIMEOUT = -32001
QUEUE_FULL = -32002
SHUTTING_DOWN = -32003

#: Stable human-readable names, the field tests and clients switch on
#: (codes stay wire-compatible; names stay grep-able).
ERROR_NAMES = {
    PARSE_ERROR: "parse-error",
    INVALID_REQUEST: "invalid-request",
    METHOD_NOT_FOUND: "method-not-found",
    INVALID_PARAMS: "invalid-params",
    ANALYSIS_ERROR: "analysis-error",
    TIMEOUT: "timeout",
    QUEUE_FULL: "queue-full",
    SHUTTING_DOWN: "shutting-down",
}

#: The method surface.  ``analyse`` and ``reanalyse`` differ in exactly
#: one bit: ``reanalyse`` enables the exactness-gated warm-start tier.
#: ``metrics`` is the Prometheus twin of ``stats``: same counters, text
#: exposition format, for scrapers watching a resident server.
METHODS = ("ping", "analyse", "reanalyse", "batch", "stats", "metrics", "shutdown")


class ProtocolError(Exception):
    """A request that cannot be dispatched, with its wire error code."""

    def __init__(self, code: int, message: str, request_id: Any = None) -> None:
        super().__init__(message)
        self.code = code
        self.request_id = request_id


def decode_request(line: bytes | str) -> dict:
    """Parse and validate one request line.

    Raises :class:`ProtocolError` with the precise code: ``parse-error``
    for non-JSON, ``invalid-request`` for JSON of the wrong shape,
    ``method-not-found`` for an unknown method -- carrying the request
    ``id`` whenever the line got far enough to have one, so the error
    response can still be correlated.
    """
    if isinstance(line, bytes):
        line = line.decode("utf-8", errors="replace")
    try:
        request = json.loads(line)
    except json.JSONDecodeError as error:
        raise ProtocolError(PARSE_ERROR, f"request is not valid JSON: {error}")
    if not isinstance(request, dict):
        raise ProtocolError(INVALID_REQUEST, "request must be a JSON object")
    request_id = request.get("id")
    if request_id is not None and not isinstance(request_id, (int, str)):
        raise ProtocolError(INVALID_REQUEST, "request id must be an int or string")
    method = request.get("method")
    if not isinstance(method, str):
        raise ProtocolError(
            INVALID_REQUEST, "request needs a string 'method'", request_id
        )
    if method not in METHODS:
        raise ProtocolError(
            METHOD_NOT_FOUND,
            f"unknown method {method!r}; methods: {', '.join(METHODS)}",
            request_id,
        )
    params = request.get("params", {})
    if not isinstance(params, dict):
        raise ProtocolError(
            INVALID_REQUEST, "request 'params' must be an object", request_id
        )
    return {"id": request_id, "method": method, "params": params}


def result_response(request_id: Any, result: Any) -> dict:
    """Shape a success response."""
    return {"id": request_id, "result": result}


def error_response(request_id: Any, code: int, message: str) -> dict:
    """Shape an error response (code, stable name, human message)."""
    return {
        "id": request_id,
        "error": {
            "code": code,
            "name": ERROR_NAMES.get(code, "error"),
            "message": message,
        },
    }


def encode(message: dict) -> bytes:
    """One response (or request) as a deterministic single wire line.

    Sorted keys over :func:`repro.analysis.report.json_ready`-normalized
    data: the same bytes for the same content, whatever process produced
    them -- the property the golden protocol tests pin.
    """
    return (
        json.dumps(json_ready(message), sort_keys=True, separators=(",", ":")) + "\n"
    ).encode("utf-8")
