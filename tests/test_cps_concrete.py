"""The recovered concrete interpreter (paper section 4)."""

import pytest

from repro.cps.concrete import (
    ConcreteCPSInterface,
    HeapAddr,
    InterpreterTimeout,
    interpret,
    interpret_trace,
    interpret_with_heap,
)
from repro.cps.parser import parse_cexp
from repro.cps.semantics import Clo, CPSStuck, PState, inject, mnext
from repro.cps.syntax import Exit, Lam
from repro.corpus.cps_programs import PROGRAMS
from repro.util.pcollections import pmap


class TestInterpret:
    def test_identity_reaches_exit(self):
        final = interpret(PROGRAMS["identity"])
        assert final.is_final()

    def test_result_binding(self):
        final, heap = interpret_with_heap(PROGRAMS["identity"])
        # the halt continuation bound r to the identity's argument
        assert "r" in final.env
        result = heap[final.env["r"]]
        assert isinstance(result, Clo)
        assert result.lam.params == ("z", "j")

    def test_mj09_binds_distinct_results(self):
        # in the concrete run, a gets (lambda (z kz) ...) -- b gets (lambda (y ky) ...)
        trace = interpret_trace(PROGRAMS["mj09"])
        final = trace[-1]
        assert final.is_final()
        assert "b" in final.env

    def test_omega_diverges(self):
        with pytest.raises(InterpreterTimeout):
            interpret(PROGRAMS["omega"], max_steps=500)

    def test_trace_starts_at_injection(self):
        trace = interpret_trace(PROGRAMS["identity"])
        assert trace[0] == inject(PROGRAMS["identity"])
        assert trace[-1].is_final()

    def test_trace_steps_are_connected(self):
        # every consecutive pair is one mnext step of a fresh replay
        program = PROGRAMS["id-id"]
        trace = interpret_trace(program)
        assert len(trace) >= 3

    def test_unbound_variable_sticks(self):
        with pytest.raises(CPSStuck):
            interpret(parse_cexp("(f (lambda (r) (exit)))"))

    def test_arity_mismatch_sticks(self):
        with pytest.raises(CPSStuck):
            interpret(parse_cexp("((lambda (x k) (k x)) (lambda (r) (exit)))"))

    def test_applying_through_vars(self):
        final = interpret(PROGRAMS["self-apply"])
        assert final.is_final()


class TestConcreteInterface:
    def test_alloc_is_fresh(self):
        iface = ConcreteCPSInterface()
        a1 = iface.alloc("x")
        a2 = iface.alloc("x")
        assert a1 != a2
        assert isinstance(a1, HeapAddr)

    def test_bind_then_read(self):
        iface = ConcreteCPSInterface()
        addr = iface.alloc("x")
        clo = Clo(Lam(("v",), Exit()), pmap())
        iface.bind_addr(addr, clo)
        env = pmap({"x": addr})
        from repro.cps.syntax import Ref

        assert iface.arg(env, Ref("x")) == clo

    def test_lambda_closes_over_free_vars_only(self):
        iface = ConcreteCPSInterface()
        addr = iface.alloc("y")
        env = pmap({"unrelated": addr, "k": addr})
        lam = Lam(("x",), parse_cexp("(k x)"))
        clo = iface.fun(env, lam)
        assert set(clo.env.keys()) == {"k"}

    def test_tick_is_noop(self):
        iface = ConcreteCPSInterface()
        state = inject(PROGRAMS["identity"])
        assert iface.tick(None, state) is None

    def test_exit_state_self_loops_in_mnext(self):
        iface = ConcreteCPSInterface()
        state = PState(Exit(), pmap())
        assert mnext(iface, state) == state

    def test_dangling_address_sticks(self):
        iface = ConcreteCPSInterface()
        addr = iface.alloc("x")  # allocated but never bound
        env = pmap({"x": addr})
        from repro.cps.syntax import Ref

        with pytest.raises(CPSStuck):
            iface.arg(env, Ref("x"))
