"""Featherweight Java corpus programs.

The classics: the Pair example from the FJ paper, dynamic dispatch
through a shared helper (the mj09 pattern transplanted to objects, where
context-sensitivity shows up as class-flow precision), double dispatch
(visitor), and casts that may or may not fail.
"""

from __future__ import annotations

from repro.fj.parser import parse_program
from repro.fj.syntax import Program

#: The Pair example from Igarashi-Pierce-Wadler, with a functional setter.
PAIR = """
class A extends Object { }
class B extends Object { }
class Pair extends Object {
  Object fst;
  Object snd;
  Pair setfst(Object newfst) { return new Pair(newfst, this.snd); }
}
new Pair(new A(), new B()).setfst(new B()).fst
"""

#: The mj09 pattern in FJ: one identity method, two call sites with
#: different argument classes.  0CFA merges {A, B} at both a and b;
#: 1CFA keeps them apart.
ID_TWICE = """
class A extends Object { }
class B extends Object { }
class Id extends Object {
  Object id(Object x) { return x; }
}
class Client extends Object {
  Object run(Id i) {
    return new Pair(i.id(new A()), i.id(new B())).fst;
  }
}
class Pair extends Object {
  Object fst;
  Object snd;
}
new Client().run(new Id())
"""

#: Dynamic dispatch: which speak() bodies are reachable?
ANIMALS = """
class Animal extends Object {
  Object speak() { return new Silence(); }
}
class Silence extends Object { }
class Bark extends Object { }
class Meow extends Object { }
class Dog extends Animal {
  Object speak() { return new Bark(); }
}
class Cat extends Animal {
  Object speak() { return new Meow(); }
}
class Kennel extends Object {
  Object poke(Animal a) { return a.speak(); }
}
class Pair extends Object {
  Object fst;
  Object snd;
}
new Pair(new Kennel().poke(new Dog()), new Kennel().poke(new Cat())).fst
"""

#: Visitor-style double dispatch over two shapes.
VISITOR = """
class Shape extends Object {
  Object accept(Visitor v) { return this; }
}
class Circle extends Shape {
  Object accept(Visitor v) { return v.circle(this); }
}
class Square extends Shape {
  Object accept(Visitor v) { return v.square(this); }
}
class Visitor extends Object {
  Object circle(Circle c) { return new TagC(); }
  Object square(Square s) { return new TagS(); }
}
class TagC extends Object { }
class TagS extends Object { }
class Pair extends Object {
  Object fst;
  Object snd;
}
new Pair(new Circle().accept(new Visitor()), new Square().accept(new Visitor())).fst
"""

#: An always-safe downcast (the static type loses information; the cast
#: recovers it) -- the analysis should prove it cannot fail.
SAFE_CAST = """
class A extends Object {
  Object m() { return new A(); }
}
class Holder extends Object {
  Object get(Object x) { return x; }
}
((A) new Holder().get(new A())).m()
"""

#: A downcast that fails on the concrete run (and shows up in the
#: may-fail cast report).
BAD_CAST = """
class A extends Object { }
class B extends Object { }
class Holder extends Object {
  Object get(Object x) { return x; }
}
(A) new Holder().get(new B())
"""

#: A linked list with a recursive traversal: the walk recurses through
#: Cons cells to the Nil, exercising recursive dispatch and
#: store-allocated object structure (the analysis must follow field
#: addresses through the heap).
LIST_LOOP = """
class Nil extends Object {
  Object headOr(Object dflt) { return dflt; }
  Object walk() { return this; }
}
class Cons extends Nil {
  Object head;
  Nil tail;
  Object headOr(Object dflt) { return this.head; }
  Object walk() { return this.tail.walk(); }
}
class Payload extends Object { }
new Cons(new Payload(), new Cons(new Payload(), new Nil())).walk()
"""

#: Church booleans as objects: select between branches by dynamic
#: dispatch -- the object-oriented mirror of the lambda encodings.
CHURCH_BOOL = """
class Bool extends Object {
  Object pick(Object then, Object otherwise) { return then; }
}
class True extends Bool {
  Object pick(Object then, Object otherwise) { return then; }
}
class False extends Bool {
  Object pick(Object then, Object otherwise) { return otherwise; }
}
class Branchy extends Object {
  Object choose(Bool b) { return b.pick(new Yes(), new No()); }
}
class Yes extends Object { }
class No extends Object { }
class Pair extends Object {
  Object fst;
  Object snd;
}
new Pair(new Branchy().choose(new True()), new Branchy().choose(new False())).fst
"""

PROGRAMS: dict[str, Program] = {}


def _register(name: str, source: str) -> None:
    PROGRAMS[name] = parse_program(source)


_register("pair", PAIR)
_register("id-twice", ID_TWICE)
_register("animals", ANIMALS)
_register("visitor", VISITOR)
_register("safe-cast", SAFE_CAST)
_register("bad-cast", BAD_CAST)
_register("list-walk", LIST_LOOP)
_register("church-bool", CHURCH_BOOL)


def program(name: str) -> Program:
    return PROGRAMS[name]


def dispatch_chain(n: int) -> Program:
    """``n`` wrapper classes each forwarding through the same identity
    method: the FJ analogue of :func:`repro.corpus.cps_programs.id_chain`.

    Monovariant analysis merges all ``n`` payload classes at the shared
    parameter; 1CFA keeps each call site's class separate.
    """
    if n < 1:
        raise ValueError("chain length must be at least 1")
    classes = ["class Id extends Object { Object id(Object x) { return x; } }"]
    for i in range(n):
        classes.append(f"class P{i} extends Object {{ }}")
    fields = []
    for i in range(n):
        fields.append(f"  Object f{i};")
    classes.append("class Tuple extends Object {\n" + "\n".join(fields) + "\n}")
    args = ", ".join(f"new Id().id(new P{i}())" for i in range(n))
    main = f"new Tuple({args}).f0"
    return parse_program("\n".join(classes) + "\n" + main)
