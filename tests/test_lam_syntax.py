"""Direct-style syntax, parser, desugaring, alphatization."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cps.parser import ParseError
from repro.lam.parser import parse_expr
from repro.lam.syntax import (
    App,
    Lam,
    Let,
    Var,
    alphatize,
    desugar_let,
    free_vars,
    pp,
    subterms,
    term_size,
)

names = st.sampled_from(["x", "y", "z", "f"])


def exprs(depth=3):
    if depth == 0:
        return st.builds(Var, names)
    sub = exprs(depth - 1)
    return st.one_of(
        st.builds(Var, names),
        st.builds(lambda p, b: Lam((p,), b), names, sub),
        st.builds(lambda f, a: App(f, (a,)), sub, sub),
        st.builds(Let, names, sub, sub),
    )


class TestParser:
    def test_var(self):
        assert parse_expr("x") == Var("x")

    def test_lambda(self):
        assert parse_expr("(lambda (x) x)") == Lam(("x",), Var("x"))

    def test_multi_param_lambda(self):
        assert parse_expr("(lambda (x y) x)") == Lam(("x", "y"), Var("x"))

    def test_application(self):
        assert parse_expr("(f a b)") == App(Var("f"), (Var("a"), Var("b")))

    def test_let(self):
        assert parse_expr("(let ((x f)) x)") == Let("x", Var("f"), Var("x"))

    def test_let_star_nests(self):
        t = parse_expr("(let* ((x f) (y x)) y)")
        assert t == Let("x", Var("f"), Let("y", Var("x"), Var("y")))

    def test_let_requires_single_binding(self):
        with pytest.raises(ParseError):
            parse_expr("(let ((x f) (y g)) x)")

    def test_malformed_let(self):
        with pytest.raises(ParseError):
            parse_expr("(let (x f) x)")

    def test_duplicate_params(self):
        with pytest.raises(ParseError):
            parse_expr("(lambda (x x) x)")

    def test_keyword_as_var(self):
        with pytest.raises(ParseError):
            parse_expr("(f let)")

    def test_comments(self):
        assert parse_expr("; hello\n(f x) ; goodbye") == App(Var("f"), (Var("x"),))


class TestFreeVars:
    def test_var(self):
        assert free_vars(Var("x")) == frozenset(["x"])

    def test_lambda_binds(self):
        assert free_vars(parse_expr("(lambda (x) (x y))")) == frozenset(["y"])

    def test_let_binds_body_only(self):
        t = parse_expr("(let ((x y)) (x z))")
        assert free_vars(t) == frozenset(["y", "z"])

    def test_let_rhs_not_in_scope_of_itself(self):
        t = parse_expr("(let ((x x)) x)")
        assert free_vars(t) == frozenset(["x"])

    @given(exprs())
    def test_desugar_preserves_free_vars(self, t):
        assert free_vars(desugar_let(t)) == free_vars(t)


class TestDesugar:
    def test_let_becomes_application(self):
        t = desugar_let(parse_expr("(let ((x f)) x)"))
        assert t == App(Lam(("x",), Var("x")), (Var("f"),))

    @given(exprs())
    def test_no_lets_remain(self, t):
        assert not any(isinstance(s, Let) for s in subterms(desugar_let(t)))


class TestPrettyPrint:
    @given(exprs())
    def test_roundtrip(self, t):
        assert parse_expr(pp(t)) == t


class TestUniquify:
    def test_already_unique_is_unchanged(self):
        from repro.lam.syntax import uniquify

        t = parse_expr("(let ((id (lambda (x) x))) (id (lambda (y) y)))")
        assert uniquify(t) == t

    def test_duplicate_binders_renamed(self):
        from repro.lam.syntax import uniquify, subterms

        t = parse_expr("((lambda (x) x) (lambda (x) x))")
        u = uniquify(t)
        binders = [p for s in subterms(u) if isinstance(s, Lam) for p in s.params]
        assert len(binders) == len(set(binders))

    def test_shadowing_resolved_correctly(self):
        from repro.lam.syntax import uniquify
        from repro.cesk.concrete import evaluate

        # the capture case hypothesis found: lets rebinding the same name
        t = parse_expr(
            "((let ((v (lambda (a) a))) v) (let ((v (lambda (b) (lambda (c) c)))) v))"
        )
        assert evaluate(uniquify(t)).lam.params == evaluate(t).lam.params

    @given(exprs())
    def test_free_vars_preserved(self, t):
        from repro.lam.syntax import uniquify

        assert free_vars(uniquify(t)) == free_vars(t)

    @given(exprs())
    def test_binders_unique_afterwards(self, t):
        from repro.lam.syntax import uniquify

        u = uniquify(t)
        binders = []
        for s in subterms(u):
            if isinstance(s, Lam):
                binders.extend(s.params)
            elif isinstance(s, Let):
                binders.append(s.var)
        assert len(binders) == len(set(binders))

    @given(exprs())
    def test_idempotent(self, t):
        from repro.lam.syntax import uniquify

        once = uniquify(t)
        assert uniquify(once) == once


class TestAlphatize:
    @given(exprs())
    def test_free_vars_preserved(self, t):
        assert free_vars(alphatize(t)) == free_vars(t)

    @given(exprs())
    def test_binders_unique(self, t):
        renamed = alphatize(t)
        binders = []
        for s in subterms(renamed):
            if isinstance(s, Lam):
                binders.extend(s.params)
            elif isinstance(s, Let):
                binders.append(s.var)
        assert len(binders) == len(set(binders))

    @given(exprs())
    def test_size_preserved(self, t):
        assert term_size(alphatize(t)) == term_size(t)
