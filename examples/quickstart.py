"""Quickstart: parse a CPS program, run it, then analyze it.

Run with::

    python examples/quickstart.py

The program is the paper's running pattern (one identity, two call
sites).  We (1) execute it with the concrete interpreter recovered from
the monadic semantics (section 4), then (2) compute a monovariant and a
1-CFA analysis by swapping a single component, and print the flows-to
tables side by side.
"""

from repro.analysis.report import fmt_table
from repro.cps import analyse_kcfa, analyse_zerocfa, interpret, parse_program
from repro.cps.syntax import pp

SOURCE = """
((lambda (id k)
   (id (lambda (z kz) (kz z))
       (lambda (a)
         (id (lambda (y ky) (ky y))
             (lambda (b) (exit))))))
 (lambda (x j) (j x))
 (lambda (r) (exit)))
"""


def main() -> None:
    program = parse_program(SOURCE)
    print("program:")
    print(" ", pp(program))
    print()

    final = interpret(program)
    print(f"concrete run finished at: {final.ctrl!r}")
    print()

    mono = analyse_zerocfa(program)
    poly = analyse_kcfa(program, k=1)

    rows = []
    for var in sorted(set(mono.flows_to()) | set(poly.flows_to())):
        flows0 = mono.flows_to().get(var, frozenset())
        flows1 = poly.flows_to().get(var, frozenset())
        rows.append((var, len(flows0), len(flows1)))
    print(fmt_table(["variable", "|flows| 0CFA", "|flows| 1CFA"], rows))
    print()
    print(
        "0CFA conflates the two uses of the identity (a and b each see 2\n"
        "lambdas); 1CFA distinguishes the call sites and is exact."
    )
    print()

    # the same analyses by name: the preset registry drives the CLI,
    # the benchmarks and the tests through one assemble() entry point
    from repro.cps.analysis import analyse

    fast = analyse(preset="1cfa-gc").run(program)
    print(
        f"preset 1cfa-gc (depgraph engine, versioned store, abstract GC):\n"
        f"  {fast.num_states()} states, store of {fast.store_size()} live addresses"
    )


if __name__ == "__main__":
    main()
