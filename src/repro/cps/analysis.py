"""The CPS analysis family: collecting semantics to k-CFA and beyond (5-8).

One interface implementation, :class:`AbstractCPSInterface`, covers the
whole spectrum: it is parameterized by an
:class:`~repro.core.addresses.Addressable` (polyvariance and context,
6.1) and a :class:`~repro.core.store.StoreLike` (store representation
and abstract counting, 6.2-6.3), and runs in the
:class:`~repro.core.monads.StorePassing` monad (5.3.1).  The fixed-point
side is equally modular: per-state stores or the shared-store widening
(6.5), with or without abstract garbage collection (6.4).

The convenience constructors at the bottom reproduce section 8's family:

* :func:`analyse_concrete_collecting` -- 5.3's concrete collecting
  semantics (unique addresses);
* :func:`analyse_kcfa`        -- 8.1, per-state stores;
* :func:`analyse_shared`      -- 8.2, single-threaded store;
* :func:`analyse_with_count`  -- 8.3, counting store;
* :func:`analyse_with_gc`     -- 6.4, abstract GC;
* :func:`analyse_zerocfa`     -- 2.3.1, monovariance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Hashable

from repro.config import AnalysisConfig, assemble, build_config
from repro.core.addresses import Addressable, Binding, ConcreteAddressing, KCFA, ZeroCFA
from repro.core.collecting import PerStateStoreCollecting, SharedStoreCollecting
from repro.core.driver import (
    run_analysis,
    run_analysis_worklist,
    run_engine_analysis,
)
from repro.core.gc import MonadicStoreCollector
from repro.core.lattice import AbsNat
from repro.core.monads import StorePassing
from repro.core.store import CountingStore, StoreLike, unwrap_store
from repro.cps.semantics import Clo, CPSInterface, PState, free_vars_cache, inject, mnext
from repro.cps.syntax import AExp, CExp, Lam, Ref, Var
from repro.util.pcollections import PMap


class AbstractCPSInterface(CPSInterface):
    """``instance (Addressable a t, StoreLike a s d) => CPSInterface (StorePassing s t) a``.

    The three monadic state interactions of 5.3.2/6.1/6.2, verbatim:

    * ``fun/arg rho (Ref v) = lift $ getsNDSet $ flip fetch (rho ! v)``
    * ``a |-> d  = lift $ modify $ \\s -> bind s a {d}``
    * ``alloc v  = gets (valloc v)``
    * ``tick proc ps = modify (advance proc ps)``
    """

    def __init__(self, addressing: Addressable, store_like: StoreLike):
        super().__init__(StorePassing())
        self.addressing = addressing
        self.store_like = store_like

    # -- atomic evaluation ----------------------------------------------------

    def fun(self, env: PMap, aexp: AExp) -> Any:
        return self._atomic(env, aexp)

    def arg(self, env: PMap, aexp: AExp) -> Any:
        return self._atomic(env, aexp)

    def _atomic(self, env: PMap, aexp: AExp) -> Any:
        monad: StorePassing = self.monad
        if isinstance(aexp, Lam):
            captured = env.restrict(lambda v: v in free_vars_cache(aexp))
            return monad.unit(Clo(aexp, captured))
        if isinstance(aexp, Ref):
            if aexp.var not in env:
                return monad.mzero()  # unbound: this branch is dead
            addr = env[aexp.var]
            return monad.gets_nd_store(
                lambda store: self.store_like.fetch(store, addr)
            )
        return monad.mzero()

    # -- store and time -----------------------------------------------------

    def bind_addr(self, addr: Hashable, value: Clo) -> Any:
        return self.monad.modify_store(
            lambda store: self.store_like.bind(store, addr, frozenset([value]))
        )

    def alloc(self, var: Var) -> Any:
        return self.monad.gets_guts(lambda ctx: self.addressing.valloc(var, ctx))

    def tick(self, proc: Clo, pstate: PState) -> Any:
        return self.monad.modify_guts(
            lambda ctx: self.addressing.advance(proc, pstate, ctx)
        )


class CPSTouching:
    """Touchability for CPS (6.4): states and closures touch via free variables.

    ``T(ae, rho) = { rho(v) : v in free(ae) }``, extended over call sites.
    """

    def touched_by_state(self, pstate: PState) -> frozenset:
        env = pstate.env
        return frozenset(
            env[v] for v in free_vars_cache(pstate.ctrl) if v in env
        )

    def touched_by_value(self, value: Clo) -> frozenset:
        env = value.env
        return frozenset(env[v] for v in free_vars_cache(value.lam) if v in env)


# ---------------------------------------------------------------------------
# The analysis family
# ---------------------------------------------------------------------------


@dataclass
class CPSAnalysis:
    """A fully assembled analysis: interface + collecting domain + step.

    ``run`` computes the collecting semantics of a program; the result is
    wrapped in :class:`CPSAnalysisResult` for uniform inspection across
    per-state-store and shared-store domains.
    """

    interface: AbstractCPSInterface
    collecting: Any
    shared: bool
    label: str = ""
    engine: str | None = None
    transition: str = "generic"
    parallelism: str = "none"
    shards: int = 1
    schedule: str = "fifo"
    last_stats: dict = field(default_factory=dict)

    def step(self) -> Callable[[PState], Any]:
        if self.transition == "fused":
            from repro.cps.fused import build_cps_fused

            return build_cps_fused(self.interface)
        return lambda pstate: mnext(self.interface, pstate)

    def run(
        self,
        program: CExp,
        worklist: bool = False,
        max_steps: int = 1_000_000,
        warm_start: Any = None,
        capture: Any = None,
        trace: list | None = None,
    ):
        initial = inject(program)
        if self.engine is not None:
            fp = run_engine_analysis(
                self,
                initial,
                max_steps=max_steps,
                warm_start=warm_start,
                capture=capture,
                trace=trace,
            )
        elif warm_start is not None or capture is not None:
            raise ValueError("warm starts / capture need an engine-backed analysis")
        elif trace is not None:
            raise ValueError("schedule tracing needs an engine-backed analysis")
        elif worklist:
            if self.shared:
                raise ValueError("worklist evaluation applies to per-state-store domains")
            fp = run_analysis_worklist(
                self.collecting, self.step(), initial, max_states=max_steps
            )
        else:
            fp = run_analysis(self.collecting, self.step(), initial, max_steps=max_steps)
        return self.wrap_result(fp)

    def wrap_result(self, fp: Any) -> "CPSAnalysisResult":
        """View a fixed point (freshly computed or cache-loaded) uniformly.

        The fixpoint cache (:mod:`repro.service.cache`) stores bare fixed
        points; rehydrated loads are wrapped back through here so callers
        see the exact object :meth:`run` would have returned.
        """
        return CPSAnalysisResult(
            fp=fp,
            shared=self.shared,
            store_like=unwrap_store(self.interface.store_like),
            label=self.label,
        )


@dataclass
class CPSAnalysisResult:
    """A uniform view of an analysis fixed point.

    Per-state-store domains hold ``frozenset{((PState, guts), store)}``;
    shared-store domains hold ``(frozenset{(PState, guts)}, store)``.
    """

    fp: Any
    shared: bool
    store_like: StoreLike
    label: str = ""

    def configs(self) -> frozenset:
        """All ``(PState, guts)`` pairs reached."""
        if self.shared:
            return self.fp[0]
        return frozenset(pair for pair, _store in self.fp)

    def states(self) -> frozenset:
        """All partial machine states reached."""
        return frozenset(pstate for pstate, _guts in self.configs())

    def num_configs(self) -> int:
        return len(self.configs())

    def num_states(self) -> int:
        return len(self.states())

    def num_elements(self) -> int:
        """The raw size of the fixed point.

        For per-state-store domains this counts *(state, guts, store)*
        triples and therefore exposes the heap-cloning cost (6.5): two
        configurations that differ only in their stores count twice.
        For shared-store domains it is the number of state/guts pairs.
        """
        if self.shared:
            return len(self.fp[0])
        return len(self.fp)

    def global_store(self):
        """The join of every store in the result (the store, if shared)."""
        lattice = self.store_like.lattice()
        if self.shared:
            return self.fp[1]
        return lattice.join_all(store for _pair, store in self.fp)

    def store_size(self) -> int:
        return len(list(self.store_like.addresses(self.global_store())))

    def flows_to(self) -> dict:
        """``var -> frozenset[Lam]``: which lambdas reach which variables.

        The classical CFA summary, read off the global store; addresses
        are either :class:`~repro.core.addresses.Binding` pairs or bare
        variables (0CFA), both of which name their variable.
        """
        store = self.global_store()
        flows: dict = {}
        for addr in self.store_like.addresses(store):
            var = addr.var if isinstance(addr, Binding) else addr
            lams = frozenset(clo.lam for clo in self.store_like.fetch(store, addr))
            flows[var] = flows.get(var, frozenset()) | lams
        return flows

    def flows_per_address(self) -> dict:
        """``addr -> frozenset[Lam]`` without merging contexts.

        Unlike :meth:`flows_to`, polyvariant bindings of one variable in
        different contexts stay separate, exposing the precision that
        context-sensitivity actually bought.
        """
        store = self.global_store()
        return {
            addr: frozenset(clo.lam for clo in self.store_like.fetch(store, addr))
            for addr in self.store_like.addresses(store)
        }

    def reaching_exit(self) -> frozenset:
        """The final (Exit) states in the result."""
        return frozenset(s for s in self.states() if s.is_final())

    def singleton_counts(self) -> frozenset:
        """Addresses the counting store proves singly-allocated (8.3)."""
        store = self.global_store()
        if not isinstance(self.store_like, CountingStore):
            raise TypeError("singleton counts need a CountingStore")
        return self.store_like.singleton_addresses(store)

    def count_of(self, addr: Hashable) -> AbsNat:
        if not isinstance(self.store_like, CountingStore):
            raise TypeError("counts need a CountingStore")
        return self.store_like.count(self.global_store(), addr)


def assemble_cps(
    config: AnalysisConfig, addressing: Addressable, store: StoreLike
) -> CPSAnalysis:
    """Build a :class:`CPSAnalysis` from validated, prepared components.

    Called by :func:`repro.config.assemble`; the config has been
    validated and ``store`` already carries any engine wrapping
    (versioned swap-in, recording decoration).
    """
    interface = AbstractCPSInterface(addressing, store)
    collector = (
        MonadicStoreCollector(interface.monad, store, CPSTouching())
        if config.gc
        else None
    )
    if config.shared:
        collecting: Any = SharedStoreCollecting(
            interface.monad, store, addressing.tau0(), collector
        )
    else:
        collecting = PerStateStoreCollecting(
            interface.monad, store, addressing.tau0(), collector
        )
    return CPSAnalysis(
        interface=interface,
        collecting=collecting,
        shared=config.shared,
        label=config.label,
        engine=config.engine,
        transition=config.transition,
        parallelism=config.parallelism,
        shards=config.shards,
        schedule=config.schedule,
    )


def analyse(
    addressing: Addressable | None = None,
    store_like: StoreLike | None = None,
    shared: bool | None = None,
    gc: bool | None = None,
    label: str = "",
    engine: str | None = None,
    store_impl: str | None = None,
    transition: str | None = None,
    preset: str | None = None,
) -> CPSAnalysis:
    """Assemble an analysis from the paper's degrees of freedom.

    ``addressing`` fixes polyvariance/context (6.1); ``store_like`` fixes
    the store representation and counting (6.2-6.3); ``shared`` selects
    the single-threaded-store widening (6.5); ``gc`` weaves in abstract
    garbage collection (6.4); ``engine`` picks a fixed-point strategy
    over the store-widened domain (one of
    :data:`~repro.core.fixpoint.ENGINES`), superseding ``shared``;
    ``store_impl`` picks the store representation behind the worklist
    engines (one of :data:`~repro.core.fixpoint.STORE_IMPLS`);
    ``transition`` picks how the step executes (one of
    :data:`repro.config.TRANSITIONS`: the generic monadic normal form,
    or the staged fused step -- identical fixed points).

    ``preset`` starts from a named configuration in
    :data:`repro.config.PRESETS` instead (e.g.
    ``analyse(preset="1cfa-gc")``); the other keywords then act as
    overrides.  Either way the call routes through
    :func:`repro.config.assemble`, which validates the combination.
    """
    config = build_config(
        "cps",
        preset=preset,
        addressing=addressing,
        store_like=store_like,
        shared=shared,
        gc=gc,
        engine=engine,
        store_impl=store_impl,
        transition=transition,
        label=label,
    )
    return assemble(config, addressing=addressing, store_like=store_like)


def analyse_concrete_collecting(program: CExp, max_steps: int = 1_000_000) -> CPSAnalysisResult:
    """5.3: the concrete collecting semantics (unique integer-like addresses).

    Terminates exactly when the program has finitely many reachable
    concrete states; it is the reference point that every abstraction
    must cover (a posteriori soundness, 6.1).
    """
    analysis = analyse(ConcreteAddressing(), label="concrete-collecting")
    return analysis.run(program, worklist=True, max_steps=max_steps)


def analyse_kcfa(program: CExp, k: int = 1, worklist: bool = True, gc: bool = False) -> CPSAnalysisResult:
    """8.1: k-CFA with per-state (heap-cloning) stores."""
    analysis = analyse(KCFA(k), gc=gc, label=f"{k}cfa")
    return analysis.run(program, worklist=worklist)


def analyse_zerocfa(program: CExp, worklist: bool = True) -> CPSAnalysisResult:
    """2.3.1: the monovariant analysis (variables are their own addresses)."""
    analysis = analyse(ZeroCFA(), label="0cfa")
    return analysis.run(program, worklist=worklist)


def analyse_shared(program: CExp, k: int = 1, gc: bool = False) -> CPSAnalysisResult:
    """8.2: k-CFA widened with Shivers' single-threaded store."""
    analysis = analyse(KCFA(k), shared=True, gc=gc, label=f"{k}cfa-shared")
    return analysis.run(program)


def analyse_with_count(program: CExp, k: int = 1, shared: bool = True) -> CPSAnalysisResult:
    """8.3: the same analysis with a counting store slotted in.

    Note on precision: under the shared-store widening the fixed-point
    iteration re-runs transitions against the global store, so every
    re-analyzed allocation bumps its count -- counts drift soundly toward
    MANY.  For sharp cardinality results (must-alias facts) use
    ``shared=False``, where each configuration's own store is rebuilt
    deterministically and straight-line allocations stay at ONE.
    """
    analysis = analyse(
        KCFA(k), store_like=CountingStore(), shared=shared, label=f"{k}cfa-count"
    )
    return analysis.run(program, worklist=not shared)


def analyse_with_gc(program: CExp, k: int = 1, shared: bool = False) -> CPSAnalysisResult:
    """6.4: the same analysis with abstract garbage collection woven in."""
    analysis = analyse(KCFA(k), shared=shared, gc=True, label=f"{k}cfa-gc")
    return analysis.run(program, worklist=not shared)


def analyse_with_engine(
    program: CExp,
    engine: str,
    k: int = 1,
    counting: bool = False,
    stats: dict | None = None,
    store_impl: str = "persistent",
    transition: str | None = None,
) -> CPSAnalysisResult:
    """k-CFA over the global store under a named fixed-point engine.

    The three engines (:data:`~repro.core.fixpoint.ENGINES`) compute the
    identical fixed point of the store-widened domain; they differ only
    in how much of the reached set each store change re-evaluates.
    ``counting`` composes with every engine: the worklist engines track
    written addresses through the recording store's write log and
    saturate their counts on convergence, reproducing the kleene
    counting fixed point without its re-evaluations.  ``store_impl``
    picks persistent or versioned store backing for the worklist
    engines (identical fixed points, O(delta) hot loop).
    """
    analysis = analyse(
        KCFA(k),
        store_like=CountingStore() if counting else None,
        engine=engine,
        label=f"{k}cfa-{engine}-{store_impl}",
        store_impl=store_impl,
        transition=transition,
    )
    result = analysis.run(program)
    if stats is not None:
        stats.update(analysis.last_stats)
    return result
