"""The s-expression front end for CPS."""

import pytest

from repro.cps.parser import ParseError, parse_aexp, parse_cexp, read_sexp, tokenize
from repro.cps.syntax import Call, Exit, Lam, Ref


class TestTokenizer:
    def test_parens_and_atoms(self):
        assert tokenize("(f a)") == ["(", "f", "a", ")"]

    def test_whitespace_insensitive(self):
        assert tokenize("( f\n  a\t)") == ["(", "f", "a", ")"]

    def test_comments_stripped(self):
        assert tokenize("(f ; call f\n a)") == ["(", "f", "a", ")"]

    def test_empty(self):
        assert tokenize("  ; nothing\n") == []

    def test_unicode_lambda(self):
        assert tokenize("(λ (x) (exit))")[1] == "λ"


class TestReadSexp:
    def test_nested(self):
        sexp, idx = read_sexp(tokenize("(a (b c) d)"))
        assert sexp == ["a", ["b", "c"], "d"]

    def test_unclosed(self):
        with pytest.raises(ParseError):
            read_sexp(tokenize("(a (b"))

    def test_stray_close(self):
        with pytest.raises(ParseError):
            read_sexp(tokenize(")"))


class TestParseCExp:
    def test_exit(self):
        assert parse_cexp("(exit)") == Exit()

    def test_simple_call(self):
        assert parse_cexp("(f a b)") == Call(Ref("f"), (Ref("a"), Ref("b")))

    def test_nullary_call(self):
        assert parse_cexp("(f)") == Call(Ref("f"), ())

    def test_lambda_operator(self):
        t = parse_cexp("((lambda (x k) (k x)) a h)")
        assert isinstance(t.fun, Lam)
        assert t.fun.params == ("x", "k")
        assert t.fun.body == Call(Ref("k"), (Ref("x"),))

    def test_greek_lambda(self):
        assert parse_cexp("((λ (x) (exit)) a)") == parse_cexp("((lambda (x) (exit)) a)")

    def test_nested_lambdas(self):
        t = parse_cexp("((lambda (f k) (f (lambda (v) (exit)))) g h)")
        inner = t.fun.body.args[0]
        assert isinstance(inner, Lam) and inner.params == ("v",)

    def test_empty_input(self):
        with pytest.raises(ParseError):
            parse_cexp("")

    def test_trailing_garbage(self):
        with pytest.raises(ParseError):
            parse_cexp("(exit) extra")

    def test_bare_atom_not_a_call(self):
        with pytest.raises(ParseError):
            parse_cexp("x")

    def test_bare_lambda_not_a_call(self):
        with pytest.raises(ParseError):
            parse_cexp("(lambda (x) (exit))")

    def test_malformed_lambda(self):
        with pytest.raises(ParseError):
            parse_cexp("((lambda x (exit)) a)")
        with pytest.raises(ParseError):
            parse_cexp("((lambda (x)) a)")

    def test_duplicate_params_rejected(self):
        with pytest.raises(ParseError):
            parse_cexp("((lambda (x x) (exit)) a b)")

    def test_keyword_in_arg_position_rejected(self):
        with pytest.raises(ParseError):
            parse_cexp("(f lambda)")


class TestParseAExp:
    def test_var(self):
        assert parse_aexp("foo") == Ref("foo")

    def test_lambda(self):
        lam = parse_aexp("(lambda (x) (exit))")
        assert lam == Lam(("x",), Exit())

    def test_call_is_not_aexp(self):
        with pytest.raises(ParseError):
            parse_aexp("(f a)")
