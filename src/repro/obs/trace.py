"""Structured tracing: nested spans and instant events, Chrome-viewable.

A :class:`Tracer` collects *complete* spans (``ph: "X"`` in Chrome's
``trace_event`` vocabulary: one record per span, with start timestamp
and duration, both in microseconds) and *instant* events (``ph: "i"``).
Spans are opened with a ``with`` block, so on any one thread they nest
properly by construction -- a property the trace-integrity tests then
verify on the emitted artifact rather than trusting the emitter.

Delivery is a thread-local indirection, not a parameter threaded
through every call::

    with use_tracer(tracer):
        dispatch(...)           # every span inside lands in `tracer`

and instrumented sites write::

    with current_tracer().span("assemble", language=config.language):
        ...

:func:`current_tracer` resolves thread-local first (per-request tracing
in the resident server's worker threads), then the process default
(set once by ``--trace FILE`` front-ends), then the shared
:data:`NULL_TRACER`.  The null tracer's ``span`` returns one preallocated
no-op context manager -- the untraced cost of an instrumented site is a
thread-local read, an attribute load, and two trivial calls, which is
why the call sites can stay in the code permanently (the benchmark gate
in ``benchmarks/record.py`` holds the no-op path to <=3% on the hot
workload).

Two serialization shapes, chosen by filename:

* ``*.jsonl`` -- one event object per line (stream-friendly);
* anything else -- a Chrome ``{"traceEvents": [...]}`` document, loadable
  in ``chrome://tracing`` or https://ui.perfetto.dev.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Any, Iterator
from contextlib import contextmanager


class _NullSpan:
    """A reusable no-op context manager (the null tracer's span)."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info: Any) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The do-nothing tracer behind every un-traced run.

    ``active`` is False so call sites can skip argument construction
    that is itself expensive (none of the shipped sites need to).
    """

    __slots__ = ()

    active = False

    def span(self, name: str, cat: str = "phase", **args: Any) -> _NullSpan:
        """Return the shared no-op context manager."""
        return _NULL_SPAN

    def event(self, name: str, cat: str = "phase", **args: Any) -> None:
        """Discard the event."""


#: The process-wide no-op tracer (singleton; identity-comparable).
NULL_TRACER = NullTracer()


class Tracer:
    """A thread-safe collector of spans and events for one trace file.

    Timestamps are microseconds from the tracer's construction
    (``perf_counter``-based: monotone, sub-microsecond resolution).
    Thread ids are compressed to small consecutive integers in order of
    first appearance so Chrome's track names stay readable.
    """

    active = True

    def __init__(self, process_name: str = "repro") -> None:
        self._lock = threading.Lock()
        self._epoch = time.perf_counter()
        self._events: list[dict] = []
        self._tids: dict[int, int] = {}
        self.process_name = process_name
        self.pid = os.getpid()

    def _now_us(self) -> float:
        return (time.perf_counter() - self._epoch) * 1e6

    def _tid(self) -> int:
        ident = threading.get_ident()
        with self._lock:
            tid = self._tids.get(ident)
            if tid is None:
                tid = len(self._tids)
                self._tids[ident] = tid
            return tid

    @contextmanager
    def span(self, name: str, cat: str = "phase", **args: Any) -> Iterator[None]:
        """Record the ``with`` body as one complete span."""
        start = self._now_us()
        try:
            yield
        finally:
            end = self._now_us()
            record = {
                "name": name,
                "cat": cat,
                "ph": "X",
                "ts": round(start, 3),
                "dur": round(end - start, 3),
                "pid": self.pid,
                "tid": self._tid(),
            }
            if args:
                record["args"] = args
            with self._lock:
                self._events.append(record)

    def event(self, name: str, cat: str = "phase", **args: Any) -> None:
        """Record one instant event (thread-scoped)."""
        record = {
            "name": name,
            "cat": cat,
            "ph": "i",
            "s": "t",
            "ts": round(self._now_us(), 3),
            "pid": self.pid,
            "tid": self._tid(),
        }
        if args:
            record["args"] = args
        with self._lock:
            self._events.append(record)

    def events(self) -> list[dict]:
        """A copy of every event recorded so far."""
        with self._lock:
            return [dict(event) for event in self._events]

    def chrome_trace(self) -> dict:
        """The collected events as a Chrome ``trace_event`` document."""
        metadata = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": self.pid,
                "tid": 0,
                "args": {"name": self.process_name},
            }
        ]
        return {"traceEvents": metadata + self.events()}

    def write(self, path: str) -> None:
        """Serialize to ``path``: JSONL for ``*.jsonl``, Chrome JSON else."""
        if path.endswith(".jsonl"):
            with open(path, "w", encoding="utf-8") as handle:
                for event in self.events():
                    handle.write(json.dumps(event, sort_keys=True) + "\n")
            return
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.chrome_trace(), handle, sort_keys=True)
            handle.write("\n")


_STATE = threading.local()
_default_tracer: NullTracer | Tracer = NULL_TRACER


def current_tracer() -> Any:
    """The tracer instrumented sites should emit to, cheapest case first.

    Resolution order: this thread's :func:`use_tracer` override, then
    the process default (:func:`set_default_tracer`), then the shared
    no-op :data:`NULL_TRACER`.
    """
    tracer = getattr(_STATE, "tracer", None)
    if tracer is not None:
        return tracer
    return _default_tracer


def set_default_tracer(tracer: Any) -> None:
    """Install the process-wide default tracer (``--trace`` front-ends).

    Pass :data:`NULL_TRACER` to uninstall.  Worker threads with no
    thread-local override inherit this default, which is what makes one
    ``--trace FILE`` flag cover the serve executor and the sharded
    evaluation pool without any per-thread plumbing.
    """
    global _default_tracer
    _default_tracer = tracer


@contextmanager
def use_tracer(tracer: Any) -> Iterator[Any]:
    """Route this thread's spans to ``tracer`` for the ``with`` body."""
    previous = getattr(_STATE, "tracer", None)
    _STATE.tracer = tracer
    try:
        yield tracer
    finally:
        _STATE.tracer = previous
