"""Named ``imp`` corpus programs: the surface-language benchmark set.

Each entry is ``imp`` source text that parses with
:func:`repro.imp.parse_program` and lowers
(:func:`repro.imp.lower_program`) into the direct-style lambda calculus,
so the registered program *is* a ``lam`` term -- ``repro batch --corpus
imp`` runs these cells through exactly the service path the ``lam``
corpus uses, and every preset/engine/store-impl applies unchanged.

The set is shaped by the lowering's cost model (see PERFORMANCE.md,
"The imp frontend at corpus scale"): loop bodies update their variables
against *literals* (``i = i + 1``, ``i < 3``), which the lowering
specializes to early-stopping case towers; variable-variable arithmetic
appears only in straight-line code, where each operand is a single
abstract value.
"""

from __future__ import annotations

from repro.lam.syntax import Expr

#: name -> imp source text.  Sorted iteration over this dict is the
#: corpus order the batch CLI uses.
SOURCES: dict[str, str] = {
    # straight-line arithmetic: every operator, saturation and monus
    "arith": "let x = 1; let y = x + 2; let z = y * 2; return z - 1;",
    # a conditional join threading one assigned variable
    "branchy": (
        "let x = 2; let y = 0;"
        " if (x < 3) { y = x + 1; } else { y = x - 1; }"
        " return y;"
    ),
    # the canonical counting loop (one loop-carried variable)
    "counter": "let i = 0; while (i < 3) { i = i + 1; } return i;",
    # count down to zero through monus
    "countdown": "let n = 4; while (0 < n) { n = n - 1; } return n;",
    # strict boolean operators and negation feeding a conditional
    "bool-logic": (
        "let a = true; let b = !a or (1 < 2);"
        " if (a and b) { return 1; } else { return 0; }"
    ),
    # first-class functions: a higher-order combinator applied twice
    "hof-twice": (
        "fn twice(f, x) { return f(f(x)); }"
        " fn inc(n) { return n + 1; }"
        " return twice(inc, 1);"
    ),
    # a function called from inside a loop body
    "fn-in-loop": (
        "fn inc(n) { return n + 1; }"
        " let i = 0; while (i < 3) { i = inc(i); }"
        " return i;"
    ),
    # two loop-carried variables, a conditional inside the loop
    "branch-in-loop": (
        "let i = 0; let s = 0;"
        " while (i < 3) { if (i < 2) { s = s + 1; } else { s = s - 1; } i = i + 1; }"
        " return s;"
    ),
    # nested counting loops (the most expensive shape kept in the set)
    "nested-loops": (
        "let t = 0; let i = 0;"
        " while (i < 2) { let j = 0; while (j < 2) { t = t + 1; j = j + 1; } i = i + 1; }"
        " return t;"
    ),
}


def _lowered() -> dict[str, Expr]:
    from repro.imp import lower_source

    return {name: lower_source(source) for name, source in SOURCES.items()}


#: name -> lowered term, the registry :func:`repro.corpus.corpus_program`
#: serves (as language ``imp``, or as ``lam`` under the ``imp:`` prefix).
PROGRAMS: dict[str, Expr] = _lowered()


def program(name: str) -> Expr:
    return PROGRAMS[name]
