"""Direct-style analysis two ways: native CESK vs CPS-transform + CPS machine.

The paper's artifact replays the monadic development for a direct-style
lambda calculus; this example shows both routes on one source program
and checks they tell the same story:

1. analyze the direct-style term with the monadic CESK machine;
2. CPS-convert the term (one-pass, no administrative redexes) and
   analyze the result with the monadic CPS machine.

Run with::

    python examples/direct_style_pipeline.py
"""

from repro.analysis.report import fmt_table
from repro.cesk import analyse_cesk_kcfa, analyse_cesk_zerocfa, evaluate
from repro.cps.analysis import analyse_kcfa as analyse_cps_kcfa
from repro.lam import cps_convert, parse_expr
from repro.lam.syntax import pp

SOURCE = """
(let* ((id (lambda (x) x))
       (a (id (lambda (z) z)))
       (b (id (lambda (y) y))))
  b)
"""


def user_params(lam) -> tuple:
    """A lambda's user-facing parameters (transform-added conts stripped)."""
    return tuple(p for p in lam.params if not p.startswith("$"))


def main() -> None:
    expr = parse_expr(SOURCE)
    print("direct-style source:")
    print(" ", pp(expr))
    print()

    value = evaluate(expr)
    print(f"concrete CESK value: {value.lam!r}")
    print()

    cesk0 = analyse_cesk_zerocfa(expr)
    cesk1 = analyse_cesk_kcfa(expr, 1)
    cps_program = cps_convert(expr)
    cps1 = analyse_cps_kcfa(cps_program, 1)

    print("CPS image (one-pass transform):")
    from repro.cps.syntax import pp as cps_pp

    print(" ", cps_pp(cps_program))
    print()

    cesk_answers = {user_params(l) for l in cesk1.final_values()}
    cps_answers = {
        user_params(l) for l in cps1.flows_to().get("r", frozenset())
    }

    rows = [
        ("CESK 0CFA final values", len(cesk0.final_values())),
        ("CESK 1CFA final values", len(cesk1.final_values())),
        ("CPS 1CFA answers at halt", len(cps_answers)),
    ]
    print(fmt_table(["analysis", "count"], rows))
    print()
    assert cesk_answers == cps_answers, "the two pipelines disagree!"
    print("CESK-on-e and CPS-on-cps(e) agree on the final user value(s).")


if __name__ == "__main__":
    main()
