"""E10 -- the global-store worklist engine across all three languages.

Claims regenerated: (1) the kleene / worklist / depgraph engines compute
identical widened fixed points for CPS, direct-style lambda and FJ --
the strategy is the third degree of freedom, independent of both the
semantics and the monad; (2) dependency-tracked re-evaluation is the
cheapest of the three on every workload, because a store change
re-evaluates only the configurations that actually read a changed
address.
"""

import os

from conftest import run_once

from repro.analysis.report import fmt_table, timed
from repro.cesk.analysis import analyse_cesk_engine
from repro.core.fixpoint import ENGINES
from repro.corpus.cps_programs import id_chain
from repro.corpus.fj_programs import PROGRAMS as FJ_PROGRAMS
from repro.corpus.lam_programs import PROGRAMS as LAM_PROGRAMS
from repro.cps.analysis import analyse_with_engine
from repro.fj.analysis import analyse_fj_engine


def _sweep(run_engine):
    out = {}
    for engine in ENGINES:
        stats = {}
        result, seconds = run_engine(engine, stats)
        out[engine] = (result, seconds, stats)
    return out


def _print_rows(title, results):
    rows = [
        (
            engine,
            f"{seconds:.3f}s",
            result.num_states(),
            stats.get("evaluations", "-"),
            stats.get("retriggers", "-"),
        )
        for engine, (result, seconds, stats) in results.items()
    ]
    print()
    print(title)
    print(fmt_table(["engine", "time", "states", "evaluations", "retriggers"], rows))


def test_e10_cps_engines_agree(benchmark):
    program = id_chain(8)

    def run():
        return _sweep(
            lambda engine, stats: timed(
                lambda: analyse_with_engine(program, engine, k=1, stats=stats)
            )
        )

    results = run_once(benchmark, run)
    _print_rows("CPS id_chain(8), k=1", results)
    kleene = results["kleene"][0]
    for engine in ("worklist", "depgraph"):
        assert results[engine][0].flows_to() == kleene.flows_to(), engine
        assert results[engine][0].configs() == kleene.configs(), engine


def test_e10_cesk_engines_agree(benchmark):
    expr = LAM_PROGRAMS["church-two-two"]

    def run():
        return _sweep(
            lambda engine, stats: timed(
                lambda: analyse_cesk_engine(expr, engine, k=1, stats=stats)
            )
        )

    results = run_once(benchmark, run)
    _print_rows("lam church-two-two, k=1", results)
    kleene = results["kleene"][0]
    for engine in ("worklist", "depgraph"):
        assert results[engine][0].flows_to() == kleene.flows_to(), engine
        assert results[engine][0].configs() == kleene.configs(), engine


def test_e10_fj_engines_agree(benchmark):
    program = FJ_PROGRAMS["visitor"]

    def run():
        return _sweep(
            lambda engine, stats: timed(
                lambda: analyse_fj_engine(program, engine, k=1, stats=stats)
            )
        )

    results = run_once(benchmark, run)
    _print_rows("FJ visitor, k=1", results)
    kleene = results["kleene"][0]
    for engine in ("worklist", "depgraph"):
        assert results[engine][0].class_flows() == kleene.class_flows(), engine
        assert results[engine][0].configs() == kleene.configs(), engine


def test_e10_depgraph_does_least_work_everywhere(benchmark):
    """Dependency tracking evaluates the fewest configurations on every
    language's workload.

    The enforced bound is the deterministic evaluation count, not
    wall-clock (which a loaded CI runner can invert spuriously); the
    timing table is printed for the curious.
    """
    workloads = [
        ("cps", lambda e, s: timed(lambda: analyse_with_engine(id_chain(8), e, k=1, stats=s))),
        (
            "lam",
            lambda e, s: timed(
                lambda: analyse_cesk_engine(LAM_PROGRAMS["church-two-two"], e, k=1, stats=s)
            ),
        ),
        (
            "fj",
            lambda e, s: timed(
                lambda: analyse_fj_engine(FJ_PROGRAMS["visitor"], e, k=1, stats=s)
            ),
        ),
    ]

    def run():
        out = {}
        for lang, runner in workloads:
            stats_w: dict = {}
            stats_d: dict = {}
            _result_k, t_kleene = runner("kleene", {})
            _result_w, _t_w = runner("worklist", stats_w)
            _result_d, t_depgraph = runner("depgraph", stats_d)
            out[lang] = (t_kleene, t_depgraph, stats_w, stats_d)
        return out

    results = run_once(benchmark, run)
    rows = [
        (
            lang,
            f"{tk:.3f}s",
            f"{td:.3f}s",
            stats_w["evaluations"],
            stats_d["evaluations"],
        )
        for lang, (tk, td, stats_w, stats_d) in results.items()
    ]
    print()
    print(
        fmt_table(
            ["language", "kleene time", "depgraph time", "blind evals", "depgraph evals"],
            rows,
        )
    )
    for lang, (_tk, _td, stats_w, stats_d) in results.items():
        assert stats_d["evaluations"] <= stats_w["evaluations"], lang
        # every configuration is evaluated at least once, and the only
        # extra work is the retriggered re-evaluations
        assert stats_d["evaluations"] == stats_d["configurations"] + stats_d["retriggers"], lang


def test_versioned_store_speedup_on_chain(benchmark):
    """The tentpole claim: the versioned (mutable, change-versioned) store
    makes the depgraph engine's hot loop O(delta) instead of O(|store|).

    On the id-chain family at k=1 the store grows linearly with the
    chain, so the persistent path's per-evaluation PMap copies and
    store-lattice joins turn the run quadratic while the versioned path
    stays linear.  At length 200 the local speedup is >5x (and >1000x
    over the pre-hash-consing engine of PR 1); CI runners are noisy and
    share cores, so the enforced bound there is a conservative 2x.
    """
    program = id_chain(200)
    threshold = 2.0 if os.environ.get("CI") else 5.0

    def run():
        stats_p: dict = {}
        stats_v: dict = {}
        persistent, t_persistent = timed(
            lambda: analyse_with_engine(program, "depgraph", k=1, stats=stats_p)
        )
        versioned, t_versioned = timed(
            lambda: analyse_with_engine(
                program, "depgraph", k=1, stats=stats_v, store_impl="versioned"
            )
        )
        return persistent, t_persistent, versioned, t_versioned, stats_p, stats_v

    persistent, t_persistent, versioned, t_versioned, stats_p, stats_v = run_once(
        benchmark, run
    )
    print()
    print(
        fmt_table(
            ["store impl", "time", "states", "evaluations"],
            [
                ("persistent", f"{t_persistent:.3f}s", persistent.num_states(), stats_p["evaluations"]),
                ("versioned", f"{t_versioned:.3f}s", versioned.num_states(), stats_v["evaluations"]),
            ],
        )
    )
    print(f"speedup: {t_persistent / t_versioned:.1f}x (enforced: {threshold:.0f}x)")
    assert versioned.fp == persistent.fp
    assert t_versioned * threshold <= t_persistent, (
        f"versioned {t_versioned:.3f}s vs persistent {t_persistent:.3f}s "
        f"(needed {threshold:.0f}x)"
    )


def test_fused_transition_speedup_on_chain(benchmark):
    """The staging claim: compiling the monad stack out of the step makes
    each evaluation cheap.

    Same engine (depgraph), same store (versioned), same evaluation
    count -- only the transition's execution differs: the generic path
    rebuilds a tower of ``StateT`` closures and pays a ``Monad.bind``
    dispatch per bind on every evaluation, the fused path runs the
    staged first-order step (``repro/core/fused.py``).  Locally the
    chain workload shows >3x; CI runners are noisy, so the enforced
    bound there is a conservative 1.5x.  (`benchmarks/record.py --check`
    gates the fuller 2x claim over best-of-N timings.)
    """
    program = id_chain(200)
    threshold = 1.5 if os.environ.get("CI") else 2.5

    def run():
        stats_g: dict = {}
        stats_f: dict = {}
        generic, t_generic = timed(
            lambda: analyse_with_engine(
                program, "depgraph", k=1, stats=stats_g, store_impl="versioned"
            )
        )
        fused, t_fused = timed(
            lambda: analyse_with_engine(
                program,
                "depgraph",
                k=1,
                stats=stats_f,
                store_impl="versioned",
                transition="fused",
            )
        )
        return generic, t_generic, fused, t_fused, stats_g, stats_f

    generic, t_generic, fused, t_fused, stats_g, stats_f = run_once(benchmark, run)
    print()
    print(
        fmt_table(
            ["transition", "time", "states", "evaluations"],
            [
                ("generic", f"{t_generic:.3f}s", generic.num_states(), stats_g["evaluations"]),
                ("fused", f"{t_fused:.3f}s", fused.num_states(), stats_f["evaluations"]),
            ],
        )
    )
    print(f"speedup: {t_generic / t_fused:.1f}x (enforced: {threshold:.1f}x)")
    assert fused.fp == generic.fp
    assert stats_f == stats_g, "staging must not change the work counters"
    assert t_fused * threshold <= t_generic, (
        f"fused {t_fused:.3f}s vs generic {t_generic:.3f}s "
        f"(needed {threshold:.1f}x)"
    )
