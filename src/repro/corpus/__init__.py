"""Benchmark program corpus for all three languages.

* :mod:`repro.corpus.cps_programs` -- handwritten CPS terms and scalable
  generator families (polyvariance chains, store-cloning blowups);
* :mod:`repro.corpus.lam_programs` -- direct-style lambda-calculus
  programs (Church arithmetic, the k-CFA-paradox example, ``blur``,
  ``eta``, ``sat``), shared by the CESK machine and -- via the CPS
  transform -- by the CPS analyses;
* :mod:`repro.corpus.fj_programs`  -- Featherweight Java programs.
"""
