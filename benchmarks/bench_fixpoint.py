"""E9 -- fixed-point computation decoupled from the semantics (5.2).

Claims regenerated: Kleene iteration (the paper's ``kleeneIt``), the
frontier worklist, and widened iteration are interchangeable evaluation
strategies for the same collecting semantics -- identical fixed points,
different costs.  Nothing in the semantics or the monad changes.  The
same holds one level up for the global-store engines: kleene, blind
worklist and dependency-tracked worklist agree on the widened domain.
"""

from conftest import run_once

from repro.analysis.report import fmt_table, timed
from repro.core.addresses import KCFA
from repro.core.fixpoint import ENGINES
from repro.cps.analysis import analyse, analyse_with_engine
from repro.corpus.cps_programs import PROGRAMS, id_chain


def test_e9_kleene_equals_worklist(benchmark):
    names = ["identity", "mj09", "omega", "self-apply"]

    def run():
        out = {}
        for name in names:
            analysis = analyse(KCFA(1))
            out[name] = (
                analysis.run(PROGRAMS[name], worklist=False).fp,
                analysis.run(PROGRAMS[name], worklist=True).fp,
            )
        return out

    results = run_once(benchmark, run)
    for name, (kleene_fp, worklist_fp) in results.items():
        assert kleene_fp == worklist_fp, name


def test_e9_strategy_cost_comparison(benchmark):
    program = id_chain(5)

    def run():
        analysis = analyse(KCFA(1))
        kleene, t_kleene = timed(lambda: analysis.run(program, worklist=False))
        worklist, t_worklist = timed(lambda: analysis.run(program, worklist=True))
        return kleene, t_kleene, worklist, t_worklist

    kleene, t_kleene, worklist, t_worklist = run_once(benchmark, run)
    print()
    print(
        fmt_table(
            ["strategy", "time", "|fp|"],
            [
                ("Kleene iteration", f"{t_kleene:.3f}s", kleene.num_elements()),
                ("worklist", f"{t_worklist:.3f}s", worklist.num_elements()),
            ],
        )
    )
    assert kleene.fp == worklist.fp
    # the worklist touches each configuration once; Kleene re-steps the
    # whole set every round -- the worklist should never be slower by much
    assert t_worklist <= t_kleene * 1.5


def test_e9_global_store_engine_comparison(benchmark):
    """The three global-store engines: same fixed point, ranked costs."""
    program = id_chain(8)

    def run():
        out = {}
        for engine in ENGINES:
            stats = {}
            result, seconds = timed(
                lambda engine=engine, stats=stats: analyse_with_engine(
                    program, engine, k=1, stats=stats
                )
            )
            out[engine] = (result, seconds, stats)
        return out

    results = run_once(benchmark, run)
    rows = [
        (
            engine,
            f"{seconds:.3f}s",
            result.num_states(),
            stats.get("evaluations", "-"),
            stats.get("retriggers", "-"),
        )
        for engine, (result, seconds, stats) in results.items()
    ]
    print()
    print(fmt_table(["engine", "time", "states", "evaluations", "retriggers"], rows))
    kleene = results["kleene"][0]
    for engine in ("worklist", "depgraph"):
        assert results[engine][0].configs() == kleene.configs(), engine
        assert results[engine][0].flows_to() == kleene.flows_to(), engine
    # dependency tracking never evaluates more than the blind worklist
    assert results["depgraph"][2]["evaluations"] <= results["worklist"][2]["evaluations"]


def test_e9_widened_iteration_is_sound(benchmark):
    """A widening operator slots into the same loop (kleene_iterate_widened)."""
    from repro.core.fixpoint import kleene_iterate, kleene_iterate_widened
    from repro.core.lattice import PowersetLattice

    ps = PowersetLattice()

    def functional(xs):
        return frozenset([0]) | frozenset(x + 1 for x in xs if x < 40)

    def widen(_prev, nxt):
        return nxt if len(nxt) < 5 else nxt | frozenset(range(41))

    def run():
        exact = kleene_iterate(ps, functional)
        widened = kleene_iterate_widened(ps, functional, widen)
        return exact, widened

    exact, widened = run_once(benchmark, run)
    assert ps.leq(exact, widened)  # widening only over-approximates
    assert functional(widened) <= widened  # and lands on a post-fixed point
