"""Seeded, type-directed generation of closed ``imp`` programs.

The differential fuzz harness (:mod:`repro.service.fuzz`) needs corpora
that are

* **deterministic** -- the whole corpus is a pure function of
  ``(seed, count, GenConfig)``: one ``random.Random(seed)`` stream,
  no iteration over unordered containers, so the same seed reproduces
  the same programs bit-for-bit on any machine (pinned in
  ``tests/test_imp_generate.py``);
* **closed by construction** -- every variable reference is drawn from
  the scope tracked during generation and every ``while`` is a counting
  loop over a fresh counter that only its own increment writes, so
  generated programs parse, lower and *terminate concretely* without
  any generate-and-filter retry loop;
* **type-directed** -- the generator tracks ``int``/``bool``/function
  types for every binding and only builds well-typed expressions, so
  lowering never produces a stuck term (applying a numeral to two
  booleans, say) and the concrete run always reaches a value;
* **analysis-affordable** -- inside loop bodies, arithmetic and
  comparisons keep one *literal* operand (``i = i + 1``, ``s < 3``),
  the shape :mod:`repro.imp.lower` specializes to early-stopping case
  towers; variable-variable operators are generated only in
  straight-line code.  See PERFORMANCE.md ("The imp frontend at corpus
  scale") for why the loop-body restriction is load-bearing.

The knobs live on :class:`GenConfig`; sizes default to a handful of
statements per program with shallow nesting, which keeps the whole
preset matrix at fractions of a second per program.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass

from repro.imp.syntax import (
    EBinOp,
    EBool,
    ECall,
    EFn,
    EInt,
    EUnary,
    EVar,
    Expr,
    Program,
    SAssign,
    SIf,
    SLet,
    SReturn,
    SWhile,
    Stmt,
    pp,
)

INT = "int"
BOOL = "bool"


@dataclass(frozen=True)
class FnType:
    """A first-order function type: parameter types and a result type."""

    params: tuple[str, ...]
    result: str


@dataclass(frozen=True)
class GenConfig:
    """Size and shape knobs for one generated program.

    ``max_literal`` stays below :data:`repro.imp.lower.DOMAIN_BOUND` so
    generated arithmetic is exercised both inside and at the saturation
    boundary of the bounded domain.
    """

    max_stmts: int = 6  #: statements per top-level block
    max_body_stmts: int = 2  #: statements inside a branch or loop body
    max_depth: int = 2  #: nesting depth for if/while/fn
    max_literal: int = 3  #: integer literals are drawn from 0..max_literal
    max_loops: int = 2  #: while loops per program (the expensive shape)
    fn_weight: int = 2  #: relative odds of declaring a helper function


class _Gen:
    """One program's worth of generation state."""

    def __init__(self, rng: random.Random, config: GenConfig):
        self.rng = rng
        self.config = config
        self.counter = 0
        self.loops_left = config.max_loops
        #: loop counters, readable but never assignment targets: the
        #: closed-by-construction termination argument needs the final
        #: increment to be each counter's only write
        self.protected: set = set()

    def fresh(self, base: str) -> str:
        self.counter += 1
        return f"{base}{self.counter}"

    # -- expressions -------------------------------------------------------

    def literal(self, ty: str) -> Expr:
        if ty == BOOL:
            return EBool(self.rng.random() < 0.5)
        return EInt(self.rng.randint(0, self.config.max_literal))

    def vars_of(self, env: dict, ty) -> list[str]:
        return sorted(name for name, t in env.items() if t == ty)

    def int_atom(self, env: dict) -> Expr:
        names = self.vars_of(env, INT)
        if names and self.rng.random() < 0.7:
            return EVar(self.rng.choice(names))
        return self.literal(INT)

    def int_expr(self, env: dict, depth: int, in_loop: bool) -> Expr:
        roll = self.rng.random()
        if depth <= 0 or roll < 0.35:
            return self.int_atom(env)
        if roll < 0.85:
            op = self.rng.choice(["+", "-", "*"])
            return self.binop(op, env, depth, in_loop)
        call = self.call_returning(env, INT, depth)
        return call if call is not None else self.int_atom(env)

    def bool_expr(self, env: dict, depth: int, in_loop: bool) -> Expr:
        roll = self.rng.random()
        names = self.vars_of(env, BOOL)
        if depth <= 0:
            if names and roll < 0.5:
                return EVar(self.rng.choice(names))
            return self.literal(BOOL)
        if roll < 0.55:
            op = self.rng.choice(["<", "<=", "=="])
            return self.binop(op, env, depth, in_loop)
        if roll < 0.7 and names:
            return EVar(self.rng.choice(names))
        if roll < 0.8:
            return EUnary("!", self.bool_expr(env, depth - 1, in_loop))
        op = self.rng.choice(["and", "or"])
        return EBinOp(
            op,
            self.bool_expr(env, depth - 1, in_loop),
            self.bool_expr(env, depth - 1, in_loop),
        )

    def binop(self, op: str, env: dict, depth: int, in_loop: bool) -> Expr:
        """An integer operator; inside loops one operand is a literal."""
        if in_loop:
            subject = self.int_atom(env)
            lit = self.literal(INT)
            lhs, rhs = (lit, subject) if self.rng.random() < 0.5 else (subject, lit)
            return EBinOp(op, lhs, rhs)
        return EBinOp(
            op,
            self.int_expr(env, depth - 1, in_loop),
            self.int_expr(env, depth - 1, in_loop),
        )

    def call_returning(self, env: dict, ty: str, depth: int) -> Expr | None:
        """A call to some in-scope function with the right result type."""
        candidates = sorted(
            name
            for name, t in env.items()
            if isinstance(t, FnType) and t.result == ty
        )
        if not candidates:
            return None
        name = self.rng.choice(candidates)
        fn_ty = env[name]
        args = tuple(
            self.int_atom(env) if p == INT else self.bool_expr(env, 0, False)
            for p in fn_ty.params
        )
        return ECall(EVar(name), args)

    # -- statements --------------------------------------------------------

    def fn_decl(self, env: dict, depth: int) -> tuple[Stmt, str, FnType]:
        """A helper function declaration: int params, int or bool result."""
        name = self.fresh("f")
        arity = self.rng.randint(1, 2)
        params = tuple(self.fresh("a") for _ in range(arity))
        result = INT if self.rng.random() < 0.8 else BOOL
        inner = dict(env)
        inner.update({p: INT for p in params})
        body: list[Stmt] = []
        if self.rng.random() < 0.5:
            extra = self.fresh("v")
            body.append(SLet(extra, self.int_expr(inner, depth, False)))
            inner[extra] = INT
        value = (
            self.int_expr(inner, depth, False)
            if result == INT
            else self.bool_expr(inner, depth, False)
        )
        body.append(SReturn(value))
        fn_ty = FnType(tuple(INT for _ in params), result)
        return SLet(name, EFn(params, tuple(body))), name, fn_ty

    def counting_loop(self, env: dict, depth: int) -> list[Stmt]:
        """``let c = 0; while (c < k) { body...; c = c + 1; }``.

        The counter is fresh and only the final increment writes it, so
        the loop runs exactly ``k`` concrete iterations by construction.
        """
        counter = self.fresh("c")
        bound = self.rng.randint(1, self.config.max_literal)
        inner = dict(env)
        inner[counter] = INT
        self.protected.add(counter)
        body = self.block(
            inner,
            depth - 1,
            self.rng.randint(0, self.config.max_body_stmts),
            in_loop=True,
        )
        self.protected.discard(counter)
        body.append(SAssign(counter, EBinOp("+", EVar(counter), EInt(1))))
        return [
            SLet(counter, EInt(0)),
            SWhile(EBinOp("<", EVar(counter), EInt(bound)), tuple(body)),
        ]

    def block(self, env: dict, depth: int, budget: int, in_loop: bool) -> list[Stmt]:
        """A statement sequence; mutates ``env`` with its declarations."""
        stmts: list[Stmt] = []
        for _ in range(budget):
            choices = ["let", "let"]
            assignable = [n for n in self.vars_of(env, INT) if n not in self.protected]
            if assignable:
                choices.append("assign")
            if depth > 0:
                choices.append("if")
                if not in_loop and self.loops_left > 0:
                    choices.append("while")
                if not in_loop:
                    choices.extend(["fn"] * self.config.fn_weight)
            kind = self.rng.choice(choices)
            if kind == "let":
                name = self.fresh("x")
                if self.rng.random() < 0.8:
                    stmts.append(SLet(name, self.int_expr(env, depth, in_loop)))
                    env[name] = INT
                else:
                    stmts.append(SLet(name, self.bool_expr(env, depth, in_loop)))
                    env[name] = BOOL
            elif kind == "assign":
                name = self.rng.choice(assignable)
                if in_loop:
                    # loop-carried updates stay in var (op) literal form
                    op = self.rng.choice(["+", "-", "*"])
                    stmts.append(
                        SAssign(name, EBinOp(op, EVar(name), self.literal(INT)))
                    )
                else:
                    stmts.append(SAssign(name, self.int_expr(env, depth, in_loop)))
            elif kind == "if":
                cond = self.bool_expr(env, depth - 1, in_loop)
                then = self.block(dict(env), depth - 1, 1, in_loop)
                els = (
                    self.block(dict(env), depth - 1, 1, in_loop)
                    if self.rng.random() < 0.6
                    else []
                )
                stmts.append(SIf(cond, tuple(then), tuple(els)))
            elif kind == "while":
                self.loops_left -= 1
                stmts.extend(self.counting_loop(env, depth))
            else:  # fn
                decl, name, fn_ty = self.fn_decl(env, depth - 1)
                stmts.append(decl)
                env[name] = fn_ty
        return stmts

    def program(self) -> Program:
        env: dict = {}
        body = self.block(
            env, self.config.max_depth, self.rng.randint(2, self.config.max_stmts), False
        )
        body.append(SReturn(self.int_expr(env, 1, False)))
        return Program(tuple(body))


def generate_program(rng: random.Random, config: GenConfig | None = None) -> Program:
    """One closed, well-typed, concretely terminating ``imp`` program."""
    return _Gen(rng, config or GenConfig()).program()


def generate_corpus(
    seed: int, count: int, config: GenConfig | None = None
) -> list[Program]:
    """``count`` programs from one seeded stream -- the fuzz corpus.

    Deterministic: ``generate_corpus(s, n)`` is a prefix of
    ``generate_corpus(s, m)`` for ``n <= m``.
    """
    rng = random.Random(seed)
    config = config or GenConfig()
    return [generate_program(rng, config) for _ in range(count)]


def corpus_digest(programs: list[Program]) -> str:
    """A content digest of a corpus (over canonical ``pp`` renderings).

    The determinism tests and the fuzz report pin this: the same seed
    must reproduce the same digest on every platform and process.
    """
    payload = "\n".join(pp(program) for program in programs)
    return hashlib.sha256(payload.encode()).hexdigest()
