"""Recursive-descent parser for the ``imp`` surface language.

Grammar (loosest-binding first)::

    program ::= stmt*
    stmt    ::= "let" NAME "=" expr ";"
              | NAME "=" expr ";"
              | "fn" NAME "(" params ")" block        -- let sugar
              | "if" "(" expr ")" block ("else" (block | if))?
              | "while" "(" expr ")" block
              | "return" expr ";"
              | expr ";"
    block   ::= "{" stmt* "}"
    expr    ::= or
    or      ::= and ("or" and)*
    and     ::= not ("and" not)*
    not     ::= "!" not | cmp
    cmp     ::= add (("==" | "<=" | "<") add)?
    add     ::= mul (("+" | "-") mul)*
    mul     ::= postfix ("*" postfix)*
    postfix ::= primary ("(" args ")")*
    primary ::= INT | "true" | "false" | NAME
              | "fn" "(" params ")" block
              | "(" expr ")"

Identifiers starting with ``__`` are reserved for the lowering pass
(:mod:`repro.imp.lower` manufactures join points, loop combinators and
prelude bindings under that prefix), so the parser rejects them --
which is what makes the lowering capture-free by construction.
Functions take at least one parameter and calls pass at least one
argument (the lowered lambda calculus is strictly n-ary with n >= 1).
"""

from __future__ import annotations

import re

from repro.imp.syntax import (
    EBinOp,
    EBool,
    ECall,
    EFn,
    EInt,
    EUnary,
    EVar,
    Expr,
    Program,
    SAssign,
    SExpr,
    SIf,
    SLet,
    SReturn,
    SWhile,
    Stmt,
)


class ImpParseError(ValueError):
    """A syntax error in an ``imp`` program."""


KEYWORDS = frozenset({"let", "fn", "if", "else", "while", "return", "true", "false", "and", "or"})

_TOKEN = re.compile(
    r"\s*(?:(?P<comment>#[^\n]*)"
    r"|(?P<int>\d+)"
    r"|(?P<name>[A-Za-z_][A-Za-z0-9_]*)"
    r"|(?P<op>==|<=|[-+*<!(){},;=]))"
)


def tokenize(source: str) -> list[str]:
    """Split source into tokens; ``#`` comments run to end of line."""
    tokens: list[str] = []
    index = 0
    while index < len(source):
        match = _TOKEN.match(source, index)
        if match is None:
            rest = source[index:].lstrip()
            if not rest:
                break
            raise ImpParseError(f"unexpected character {rest[0]!r}")
        index = match.end()
        if match.lastgroup != "comment":
            tokens.append(match.group(match.lastgroup))
    return tokens


class _Parser:
    def __init__(self, tokens: list[str]):
        self.tokens = tokens
        self.index = 0

    # -- token plumbing ----------------------------------------------------

    def peek(self) -> str | None:
        return self.tokens[self.index] if self.index < len(self.tokens) else None

    def next(self) -> str:
        token = self.peek()
        if token is None:
            raise ImpParseError("unexpected end of input")
        self.index += 1
        return token

    def expect(self, token: str) -> None:
        got = self.next()
        if got != token:
            raise ImpParseError(f"expected {token!r}, got {got!r}")

    def at_name(self) -> bool:
        token = self.peek()
        return (
            token is not None
            and token[0].isidentifier()
            and not token[0].isdigit()
            and token not in KEYWORDS
        )

    def name(self) -> str:
        if not self.at_name():
            raise ImpParseError(f"expected a name, got {self.peek()!r}")
        token = self.next()
        if token.startswith("__"):
            raise ImpParseError(
                f"names starting with '__' are reserved for the lowering pass: {token!r}"
            )
        return token

    # -- statements --------------------------------------------------------

    def program(self) -> Program:
        body: list[Stmt] = []
        while self.peek() is not None:
            body.append(self.stmt())
        return Program(tuple(body))

    def block(self) -> tuple[Stmt, ...]:
        self.expect("{")
        body: list[Stmt] = []
        while self.peek() != "}":
            body.append(self.stmt())
        self.expect("}")
        return tuple(body)

    def stmt(self) -> Stmt:
        token = self.peek()
        if token == "let":
            self.next()
            name = self.name()
            self.expect("=")
            rhs = self.expr()
            self.expect(";")
            return SLet(name, rhs)
        if token == "fn" and self.index + 1 < len(self.tokens) and self.tokens[self.index + 1] != "(":
            # fn NAME (params) block  ==  let NAME = fn (params) block
            self.next()
            name = self.name()
            params = self.params()
            return SLet(name, EFn(params, self.block()))
        if token == "if":
            self.next()
            self.expect("(")
            cond = self.expr()
            self.expect(")")
            then = self.block()
            els: tuple[Stmt, ...] = ()
            if self.peek() == "else":
                self.next()
                els = (self.stmt(),) if self.peek() == "if" else self.block()
            return SIf(cond, then, els)
        if token == "while":
            self.next()
            self.expect("(")
            cond = self.expr()
            self.expect(")")
            return SWhile(cond, self.block())
        if token == "return":
            self.next()
            value = self.expr()
            self.expect(";")
            return SReturn(value)
        if (
            self.at_name()
            and self.index + 1 < len(self.tokens)
            and self.tokens[self.index + 1] == "="
        ):
            name = self.name()
            self.expect("=")
            rhs = self.expr()
            self.expect(";")
            return SAssign(name, rhs)
        value = self.expr()
        self.expect(";")
        return SExpr(value)

    def params(self) -> tuple[str, ...]:
        self.expect("(")
        params = [self.name()]
        while self.peek() == ",":
            self.next()
            params.append(self.name())
        self.expect(")")
        if len(set(params)) != len(params):
            raise ImpParseError(f"duplicate parameter in {params!r}")
        return tuple(params)

    # -- expressions -------------------------------------------------------

    def expr(self) -> Expr:
        return self.or_expr()

    def _binop_chain(self, sub, ops: tuple[str, ...]) -> Expr:
        expr = sub()
        while self.peek() in ops:
            op = self.next()
            expr = EBinOp(op, expr, sub())
        return expr

    def or_expr(self) -> Expr:
        return self._binop_chain(self.and_expr, ("or",))

    def and_expr(self) -> Expr:
        return self._binop_chain(self.not_expr, ("and",))

    def not_expr(self) -> Expr:
        if self.peek() == "!":
            self.next()
            return EUnary("!", self.not_expr())
        return self.cmp_expr()

    def cmp_expr(self) -> Expr:
        expr = self.add_expr()
        if self.peek() in ("==", "<=", "<"):
            op = self.next()
            return EBinOp(op, expr, self.add_expr())
        return expr

    def add_expr(self) -> Expr:
        return self._binop_chain(self.mul_expr, ("+", "-"))

    def mul_expr(self) -> Expr:
        return self._binop_chain(self.postfix_expr, ("*",))

    def postfix_expr(self) -> Expr:
        expr = self.primary()
        while self.peek() == "(":
            self.next()
            args = [self.expr()]
            while self.peek() == ",":
                self.next()
                args.append(self.expr())
            self.expect(")")
            expr = ECall(expr, tuple(args))
        return expr

    def primary(self) -> Expr:
        token = self.peek()
        if token is None:
            raise ImpParseError("unexpected end of input")
        if token.isdigit():
            return EInt(int(self.next()))
        if token == "true":
            self.next()
            return EBool(True)
        if token == "false":
            self.next()
            return EBool(False)
        if token == "fn":
            self.next()
            params = self.params()
            return EFn(params, self.block())
        if token == "(":
            self.next()
            expr = self.expr()
            self.expect(")")
            return expr
        if self.at_name():
            return EVar(self.name())
        raise ImpParseError(f"unexpected token {token!r}")


def parse_program(source: str) -> Program:
    """Parse a whole ``imp`` program."""
    parser = _Parser(tokenize(source))
    return parser.program()


def parse_stmts(source: str) -> tuple[Stmt, ...]:
    """Parse a statement sequence (function-body fragments in tests)."""
    return parse_program(source).body
