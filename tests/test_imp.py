"""The imp surface-language frontend: parser, lowering, semantics, soundness.

The frontend's contract has three layers, tested in order:

1. the parser round-trips its own pretty-printer (``parse(pp(p)) == p``)
   and rejects ill-formed input;
2. the lowering is *concretely adequate*: lowered programs run on the
   CESK machine and decode to the integers/booleans an ordinary
   interpreter would produce -- over the saturated domain
   ``{0..DOMAIN_BOUND}`` (clamping literals, monus subtraction);
3. the lowering is *abstractly affordable and sound*: every preset in
   the fuzz matrix covers the concrete answer on the handwritten corpus.
"""

import pytest

from repro.cesk.concrete import evaluate
from repro.config import assemble, preset_config
from repro.corpus.imp_programs import SOURCES
from repro.imp import (
    ImpParseError,
    LoweringError,
    as_int,
    evaluate_imp,
    lower_source,
    parse_program,
    pp,
    truthy,
)
from repro.imp.lower import DOMAIN_BOUND
from repro.lam.syntax import free_vars


class TestParser:
    def test_pp_round_trip_on_corpus(self):
        for name, source in SOURCES.items():
            program = parse_program(source)
            assert parse_program(pp(program)) == program, name

    def test_precedence(self):
        program = parse_program("return 1 + 2 * 3;")
        assert pp(program).strip() == "return 1 + 2 * 3;"
        assert pp(parse_program("return (1 + 2) * 3;")).strip() == "return (1 + 2) * 3;"

    def test_comments_and_whitespace(self):
        program = parse_program("# a comment\nreturn 1;  # trailing\n")
        assert pp(program).strip() == "return 1;"

    def test_fn_decl_is_let_sugar(self):
        sugar = parse_program("fn f(x) { return x; } return f(1);")
        explicit = parse_program("let f = fn (x) { return x; }; return f(1);")
        assert sugar == explicit

    def test_dangling_else_if_chains(self):
        program = parse_program(
            "if (true) { return 1; } else if (false) { return 2; } else { return 3; }"
        )
        assert parse_program(pp(program)) == program

    @pytest.mark.parametrize(
        "bad",
        [
            "let __x = 1;",  # reserved prefix
            "return 1",  # missing semicolon
            "let x = ;",  # missing expression
            "fn f() { return 1; } return f();",  # nullary function
            "if true { return 1; }",  # missing parens
        ],
    )
    def test_rejects(self, bad):
        with pytest.raises(ImpParseError):
            parse_program(bad)

    def test_empty_loop_body_is_valid(self):
        parse_program("while (false) { } return 0;")

    def test_duplicate_params_rejected(self):
        with pytest.raises(ImpParseError):
            parse_program("fn f(x, x) { return x; } return f(1);")


class TestLoweringScope:
    def test_lowered_corpus_is_closed(self):
        for name, source in SOURCES.items():
            assert not free_vars(lower_source(source)), name

    def test_unbound_read_rejected(self):
        with pytest.raises(LoweringError):
            lower_source("return y;")

    def test_assignment_needs_declaration(self):
        with pytest.raises(LoweringError):
            lower_source("x = 1; return x;")

    def test_closures_cannot_assign_captured_variables(self):
        with pytest.raises(LoweringError):
            lower_source("let x = 1; fn f(y) { x = y; return x; } return f(2);")

    def test_inner_let_shadowing_does_not_escape(self):
        # the if-local x is a fresh binding; the outer x stays 1
        assert (
            as_int(
                "let x = 1;"
                " if (true) { let x = 3; x = 2; }"
                " return x;"
            )
            == 1
        )


class TestConcreteSemantics:
    @pytest.mark.parametrize(
        "source,expected",
        [
            ("return 0;", 0),
            ("return 1 + 2;", 3),
            ("return 2 * 2;", 4),
            ("return 3 - 1;", 2),
            ("return 1 - 3;", 0),  # monus
            ("let x = 2; return x + x;", 4),
            ("let x = 1; x = x + 1; return x;", 2),
            # control flow
            ("if (1 < 2) { return 3; } else { return 0; }", 3),
            ("if (2 < 1) { return 3; } else { return 0; }", 0),
            ("let y = 0; if (true) { y = 2; } return y;", 2),
            # loops
            ("let i = 0; while (i < 3) { i = i + 1; } return i;", 3),
            ("let n = 4; while (0 < n) { n = n - 1; } return n;", 0),
            (
                "let i = 0; let s = 0;"
                " while (i < 3) { s = s + 1; i = i + 1; } return s;",
                3,
            ),
            # functions
            ("fn inc(n) { return n + 1; } return inc(2);", 3),
            (
                "fn twice(f, x) { return f(f(x)); }"
                " fn inc(n) { return n + 1; } return twice(inc, 1);",
                3,
            ),
            ("let f = fn (a, b) { return a * b; }; return f(2, 2);", 4),
        ],
    )
    def test_as_int(self, source, expected):
        assert as_int(source) == expected

    def test_saturation_clamps_at_the_bound(self):
        top = DOMAIN_BOUND
        assert as_int(f"return {top} + {top};") == top
        assert as_int(f"return {top + 3};") == top
        assert as_int("return 3 * 3;") == top

    @pytest.mark.parametrize(
        "source,expected",
        [
            ("return true;", True),
            ("return false;", False),
            ("return !false;", True),
            ("return 2 == 2;", True),
            ("return 2 == 3;", False),
            ("return 2 <= 2;", True),
            ("return 3 < 3;", False),
            ("return true and false;", False),
            ("return true or false;", True),
            ("return !(1 < 2) or (2 < 1 or true);", True),
        ],
    )
    def test_truthy(self, source, expected):
        assert truthy(evaluate_imp(source)) is expected

    def test_program_value_is_the_return(self):
        value = evaluate_imp("let x = 1; return fn (y) { return y; };")
        assert value.lam.params  # a closure, not a numeral


class TestAbstractSoundness:
    """Abstract covers concrete, per preset, on the handwritten corpus."""

    PRESETS = ("1cfa", "1cfa-fused", "2cfa", "kcfa-counting-fast")

    @pytest.mark.parametrize("preset", PRESETS)
    def test_presets_cover_concrete_on_corpus(self, preset):
        for name, source in SOURCES.items():
            lowered = lower_source(source)
            concrete = evaluate(lowered, max_steps=200_000)
            config = preset_config(preset, language="lam")
            result = assemble(config).run(lowered, worklist=not config.shared)
            assert concrete.lam in result.final_values(), (name, preset)

    def test_lowering_is_deterministic(self):
        for source in SOURCES.values():
            assert lower_source(source) == lower_source(source)
