"""A small synchronous client for the resident analysis server.

One socket, one request at a time (an internal lock keeps concurrent
callers' request/response pairs from interleaving -- though the soak
tests give each thread its own client, which is also the recommended
shape: the server handles connections concurrently, a single connection
serially).  This is what ``repro client`` wraps and what the tests,
benchmark, and CI smoke drive the server with.
"""

from __future__ import annotations

import itertools
import json
import socket
import threading
from typing import Any

from repro.serve import protocol


class ServeError(Exception):
    """An error *response* from the server (not a transport failure)."""

    def __init__(self, code: int, name: str, message: str) -> None:
        super().__init__(message)
        self.code = code
        self.name = name


class ServeClient:
    """A blocking newline-JSON client for one server connection."""

    def __init__(
        self, port: int, host: str = "127.0.0.1", timeout: float | None = 60.0
    ) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")
        self._ids = itertools.count(1)
        self._lock = threading.Lock()

    def call(self, method: str, params: dict | None = None) -> Any:
        """One request, one response; returns ``result`` or raises.

        :class:`ServeError` carries the server's typed error (code,
        stable name, message); transport-level trouble (connection gone,
        non-JSON bytes) raises ``ConnectionError``.
        """
        request = {"id": next(self._ids), "method": method, "params": params or {}}
        with self._lock:
            self._file.write(protocol.encode(request))
            self._file.flush()
            line = self._file.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        try:
            response = json.loads(line)
        except json.JSONDecodeError as error:
            raise ConnectionError(f"undecodable server response: {error}")
        if not isinstance(response, dict):
            raise ConnectionError("server response is not an object")
        error = response.get("error")
        if error is not None:
            raise ServeError(
                code=error.get("code", 0),
                name=error.get("name", "error"),
                message=error.get("message", ""),
            )
        return response.get("result")

    def close(self) -> None:
        for closer in (self._file.close, self._sock.close):
            try:
                closer()
            except OSError:
                pass

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
