"""The abstract FJ analysis family -- the same monadic components, third time.

Class-flow analysis for Featherweight Java: which classes of objects
reach which variables, fields and call sites.  As with CPS and CESK,
everything except the interface's case analysis and the touchability
relation is imported from :mod:`repro.core` unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Hashable

from repro.config import AnalysisConfig, assemble, build_config
from repro.core.addresses import Addressable, Binding, KCFA, ZeroCFA
from repro.core.collecting import PerStateStoreCollecting, SharedStoreCollecting
from repro.core.driver import (
    run_analysis,
    run_analysis_worklist,
    run_engine_analysis,
)
from repro.core.gc import MonadicStoreCollector
from repro.core.monads import StorePassing
from repro.core.store import CountingStore, StoreLike, unwrap_store
from repro.fj.class_table import ClassTable
from repro.fj.machine import (
    CastF,
    FieldF,
    FieldVar,
    HALT_ADDRESS,
    HaltF,
    InvokeArgF,
    InvokeRcvF,
    KontTag,
    NewArgF,
    ObjV,
    PState,
    free_vars_cache,
    inject_fj,
)
from repro.fj.semantics import FJInterface, is_final_fj, mnext_fj
from repro.fj.syntax import Expr, Program
from repro.util.pcollections import PMap


class AbstractFJInterface(FJInterface):
    """The FJ interface over ``StorePassing``/``Addressable``/``StoreLike``."""

    def __init__(self, table: ClassTable, addressing: Addressable, store_like: StoreLike):
        super().__init__(StorePassing(), table)
        self.addressing = addressing
        self.store_like = store_like
        self._initial_store = store_like.bind(
            store_like.empty(), HALT_ADDRESS, frozenset([HaltF()])
        )

    def initial_store(self) -> Any:
        return self._initial_store

    def fetch_values(self, env: PMap, var: str) -> Any:
        if var not in env:
            return self.monad.mzero()
        addr = env[var]
        return self.monad.gets_nd_store(lambda store: self.store_like.fetch(store, addr))

    def fetch_addr(self, addr: Hashable) -> Any:
        return self.monad.gets_nd_store(lambda store: self.store_like.fetch(store, addr))

    def fetch_konts(self, ka: Hashable) -> Any:
        return self.monad.gets_nd_store(lambda store: self.store_like.fetch(store, ka))

    def bind_addr(self, addr: Hashable, value: Any) -> Any:
        return self.monad.modify_store(
            lambda store: self.store_like.bind(store, addr, frozenset([value]))
        )

    def alloc(self, var: Any) -> Any:
        return self.monad.gets_guts(lambda ctx: self.addressing.valloc(var, ctx))

    def alloc_kont(self, site: Expr) -> Any:
        return self.monad.gets_guts(
            lambda ctx: self.addressing.valloc(KontTag(site), ctx)
        )

    def tick(self, receiver: ObjV, site_state: Any) -> Any:
        return self.monad.modify_guts(
            lambda ctx: self.addressing.advance(receiver, site_state, ctx)
        )


class FJTouching:
    """Touchability for FJ (objects touch their field cells; frames their
    environments, held values and parent continuations)."""

    def touched_by_state(self, pstate: PState) -> frozenset:
        roots: set = {pstate.ka}
        if isinstance(pstate.ctrl, Expr):
            env = pstate.env
            roots |= {env[v] for v in free_vars_cache(pstate.ctrl) if v in env}
        elif isinstance(pstate.ctrl, ObjV):
            roots |= set(pstate.ctrl.field_addrs)
        return frozenset(roots)

    def touched_by_value(self, value: Any) -> frozenset:
        if isinstance(value, ObjV):
            return frozenset(value.field_addrs)
        if isinstance(value, HaltF):
            return frozenset()
        if isinstance(value, FieldF):
            return frozenset([value.parent])
        if isinstance(value, CastF):
            return frozenset([value.parent])
        if isinstance(value, InvokeRcvF):
            env = value.env
            live: set = set()
            for arg in value.args:
                live |= free_vars_cache(arg)
            return frozenset(env[v] for v in live if v in env) | {value.parent}
        if isinstance(value, InvokeArgF):
            env = value.env
            live = set()
            for arg in value.remaining:
                live |= free_vars_cache(arg)
            touched = {env[v] for v in live if v in env} | {value.parent}
            touched |= set(value.receiver.field_addrs)
            for done in value.done:
                touched |= set(done.field_addrs)
            return frozenset(touched)
        if isinstance(value, NewArgF):
            env = value.env
            live = set()
            for arg in value.remaining:
                live |= free_vars_cache(arg)
            touched = {env[v] for v in live if v in env} | {value.parent}
            for done in value.done:
                touched |= set(done.field_addrs)
            return frozenset(touched)
        return frozenset()


class _SeededPerState(PerStateStoreCollecting):
    def __init__(self, interface: AbstractFJInterface, initial_guts, collector=None):
        super().__init__(interface.monad, interface.store_like, initial_guts, collector)
        self._seed_store = interface.initial_store()

    def inject(self, state: Any) -> frozenset:
        return frozenset([((state, self.initial_guts), self._seed_store)])


class _SeededShared(SharedStoreCollecting):
    def __init__(self, interface: AbstractFJInterface, initial_guts, collector=None):
        super().__init__(interface.monad, interface.store_like, initial_guts, collector)
        self._seed_store = interface.initial_store()

    def inject(self, state: Any) -> tuple:
        return (frozenset([(state, self.inner.initial_guts)]), self._seed_store)


@dataclass
class FJAnalysis:
    """An assembled FJ class-flow analysis."""

    interface: AbstractFJInterface
    collecting: Any
    shared: bool
    label: str = ""
    engine: str | None = None
    transition: str = "generic"
    parallelism: str = "none"
    shards: int = 1
    schedule: str = "fifo"
    last_stats: dict = field(default_factory=dict)

    def step(self) -> Callable[[PState], Any]:
        if self.transition == "fused":
            from repro.fj.fused import build_fj_fused

            return build_fj_fused(self.interface)
        return lambda pstate: mnext_fj(self.interface, pstate)

    def run(
        self,
        program: Program,
        worklist: bool = True,
        max_steps: int = 1_000_000,
        warm_start: Any = None,
        capture: Any = None,
        trace: list | None = None,
    ):
        initial = inject_fj(program.main)
        if self.engine is not None:
            fp = run_engine_analysis(
                self,
                initial,
                max_steps=max_steps,
                warm_start=warm_start,
                capture=capture,
                trace=trace,
            )
        elif warm_start is not None or capture is not None:
            raise ValueError("warm starts / capture need an engine-backed analysis")
        elif trace is not None:
            raise ValueError("schedule tracing needs an engine-backed analysis")
        elif worklist and not self.shared:
            fp = run_analysis_worklist(
                self.collecting, self.step(), initial, max_states=max_steps
            )
        else:
            fp = run_analysis(self.collecting, self.step(), initial, max_steps=max_steps)
        return self.wrap_result(fp, program)

    def wrap_result(self, fp: Any, program: Program) -> "FJAnalysisResult":
        """View a fixed point (freshly computed or cache-loaded) uniformly."""
        return FJAnalysisResult(
            fp=fp,
            shared=self.shared,
            store_like=unwrap_store(self.interface.store_like),
            program=program,
            label=self.label,
        )


@dataclass
class FJAnalysisResult:
    """Uniform view of an FJ analysis fixed point."""

    fp: Any
    shared: bool
    store_like: StoreLike
    program: Program
    label: str = ""

    def configs(self) -> frozenset:
        if self.shared:
            return self.fp[0]
        return frozenset(pair for pair, _store in self.fp)

    def states(self) -> frozenset:
        return frozenset(pstate for pstate, _guts in self.configs())

    def num_states(self) -> int:
        return len(self.states())

    def num_elements(self) -> int:
        if self.shared:
            return len(self.fp[0])
        return len(self.fp)

    def global_store(self):
        lattice = self.store_like.lattice()
        if self.shared:
            return self.fp[1]
        return lattice.join_all(store for _pair, store in self.fp)

    def store_size(self) -> int:
        return len(list(self.store_like.addresses(self.global_store())))

    def class_flows(self) -> dict:
        """``var-or-field -> frozenset[class]``: which classes reach where."""
        store = self.global_store()
        flows: dict = {}
        for addr in self.store_like.addresses(store):
            var = addr.var if isinstance(addr, Binding) else addr
            if isinstance(var, KontTag) or var == HALT_ADDRESS:
                continue
            key = repr(var) if isinstance(var, FieldVar) else var
            if not isinstance(key, str):
                continue
            classes = frozenset(
                v.cls for v in self.store_like.fetch(store, addr) if isinstance(v, ObjV)
            )
            if classes:
                flows[key] = flows.get(key, frozenset()) | classes
        return flows

    def final_classes(self) -> frozenset:
        """Classes of all values the program may evaluate to."""
        return frozenset(s.ctrl.cls for s in self.states() if is_final_fj(s))

    def possible_cast_failures(self, table: ClassTable) -> list:
        """Cast expressions whose argument may hold an incompatible class.

        A may-analysis: each reported cast *can* fail along some abstract
        path; an empty report proves all casts safe.
        """
        failures = []
        store = self.store_like
        for (pstate, _guts) in self.configs():
            if not isinstance(pstate.ctrl, ObjV):
                continue
            # inspect pending cast frames this value may return into
            sigma = self.global_store()
            for frame in store.fetch(sigma, pstate.ka):
                if isinstance(frame, CastF) and not table.is_subtype(
                    pstate.ctrl.cls, frame.cls
                ):
                    failures.append((frame.cls, pstate.ctrl.cls))
        return failures


def assemble_fj_from_config(
    config: AnalysisConfig, addressing: Addressable, store: StoreLike, program: Program
) -> FJAnalysis:
    """Build an :class:`FJAnalysis` from validated, prepared components.

    Called by :func:`repro.config.assemble`; FJ additionally needs the
    program here because the interface closes over its class table.
    """
    table = ClassTable.of(program)
    interface = AbstractFJInterface(table, addressing, store)
    collector = (
        MonadicStoreCollector(interface.monad, store, FJTouching())
        if config.gc
        else None
    )
    if config.shared:
        collecting: Any = _SeededShared(interface, addressing.tau0(), collector)
    else:
        collecting = _SeededPerState(interface, addressing.tau0(), collector)
    return FJAnalysis(
        interface=interface,
        collecting=collecting,
        shared=config.shared,
        label=config.label,
        engine=config.engine,
        transition=config.transition,
        parallelism=config.parallelism,
        shards=config.shards,
        schedule=config.schedule,
    )


def analyse_fj(
    program: Program,
    addressing: Addressable | None = None,
    store_like: StoreLike | None = None,
    shared: bool | None = None,
    gc: bool | None = None,
    label: str = "",
    engine: str | None = None,
    store_impl: str | None = None,
    transition: str | None = None,
    preset: str | None = None,
) -> FJAnalysis:
    """Assemble an FJ analysis from the shared degrees of freedom.

    ``preset`` starts from :data:`repro.config.PRESETS` (e.g.
    ``analyse_fj(program, preset="1cfa-gc")``); other keywords override
    it.  All paths route through :func:`repro.config.assemble`.
    """
    config = build_config(
        "fj",
        preset=preset,
        addressing=addressing,
        store_like=store_like,
        shared=shared,
        gc=gc,
        engine=engine,
        store_impl=store_impl,
        transition=transition,
        label=label,
    )
    return assemble(
        config, program=program, addressing=addressing, store_like=store_like
    )


def analyse_fj_kcfa(program: Program, k: int = 1, gc: bool = False) -> FJAnalysisResult:
    """k-CFA class-flow analysis (per-state stores)."""
    return analyse_fj(program, KCFA(k), gc=gc, label=f"fj-{k}cfa").run(program)


def analyse_fj_zerocfa(program: Program) -> FJAnalysisResult:
    """Monovariant (context-insensitive) class-flow analysis."""
    return analyse_fj(program, ZeroCFA(), label="fj-0cfa").run(program)


def analyse_fj_shared(program: Program, k: int = 1, gc: bool = False) -> FJAnalysisResult:
    """k-CFA with the single-threaded-store widening."""
    return analyse_fj(program, KCFA(k), shared=True, gc=gc, label=f"fj-{k}cfa-shared").run(
        program
    )


def analyse_fj_counting(program: Program, k: int = 1, shared: bool = False) -> FJAnalysisResult:
    """k-CFA with a counting store (abstract counting for FJ)."""
    return analyse_fj(
        program, KCFA(k), store_like=CountingStore(), shared=shared, label=f"fj-{k}cfa-count"
    ).run(program, worklist=not shared)


def analyse_fj_gc(program: Program, k: int = 1) -> FJAnalysisResult:
    """k-CFA with abstract garbage collection."""
    return analyse_fj(program, KCFA(k), gc=True, label=f"fj-{k}cfa-gc").run(program)


def analyse_fj_engine(
    program: Program,
    engine: str,
    k: int = 1,
    stats: dict | None = None,
    store_impl: str = "persistent",
    transition: str | None = None,
) -> FJAnalysisResult:
    """Global-store class-flow analysis under a named fixed-point engine."""
    analysis = analyse_fj(
        program,
        KCFA(k),
        engine=engine,
        label=f"fj-{k}cfa-{engine}-{store_impl}",
        store_impl=store_impl,
        transition=transition,
    )
    result = analysis.run(program)
    if stats is not None:
        stats.update(analysis.last_stats)
    return result
