"""Unified observability: one metrics registry, one tracer, two exports.

Every earlier PR grew its own counter surface -- the fixpoint cache's
``lifetime`` block, ``BatchReport.pool_workers``, the resident server's
p50/p99 latencies, the schedulers' ``dedup_hits``/``max_rank``, the
intern pool's hit/miss stats.  This package is where those one-off
surfaces converge:

* :mod:`repro.obs.metrics` -- a process-wide :class:`MetricsRegistry`
  of counters, gauges, timers and nearest-rank histograms, with a
  structured :meth:`~repro.obs.metrics.MetricsRegistry.snapshot` and
  Prometheus text exposition
  (:meth:`~repro.obs.metrics.MetricsRegistry.prometheus`);
* :mod:`repro.obs.trace` -- a structured tracer emitting nested spans
  and instant events to JSONL or the Chrome ``trace_event`` format
  (viewable in ``chrome://tracing`` / Perfetto), reached through a
  thread-local :func:`~repro.obs.trace.current_tracer` whose default is
  a no-op :class:`~repro.obs.trace.NullTracer` cheap enough to leave in
  the per-phase call sites permanently (the overhead is benchmark-gated
  in ``benchmarks/record.py``).

The counting *discipline* stays where it was: sites that already expose
byte-stable counter documents (the cache's ``lifetime`` block, the
server's ``stats`` response) keep their local counters authoritative
and mirror increments into the registry, so existing contracts do not
move while every counter becomes visible from one place.
"""

from repro.obs.metrics import (
    MetricsRegistry,
    default_registry,
    percentile,
)
from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    Tracer,
    current_tracer,
    use_tracer,
)

__all__ = [
    "MetricsRegistry",
    "default_registry",
    "percentile",
    "NULL_TRACER",
    "NullTracer",
    "Tracer",
    "current_tracer",
    "use_tracer",
]
