"""Cross-process regressions: interning, hashing and pickling under ``spawn``.

The satellite this file pins: unpickling hash-consed terms in a fresh
process without re-interning *silently* breaks identity-fast equality
(everything stays correct, just slow), and ``util.intern.rehydrate``
repairs it.  ``spawn`` is used deliberately -- the strictest start
method, nothing inherited, fresh hash randomization -- so these tests
model a worker pool, a next-day cache load, and a cross-machine artifact
all at once.  The probes live in :mod:`spawn_helpers` (spawn children
must import their targets).
"""

import pickle

import pytest

import spawn_helpers
from repro.config import PRESETS, preset_config
from repro.corpus.cps_programs import MJ09, id_chain
from repro.cps.parser import parse_program


@pytest.fixture(scope="module")
def spawn_pool():
    import multiprocessing

    context = multiprocessing.get_context("spawn")
    with context.Pool(1) as pool:
        yield pool


class TestInternAcrossSpawn:
    def test_unpickled_term_identity_breaks_without_rehydrate(self, spawn_pool):
        term = parse_program(MJ09)
        outcome = spawn_pool.apply(
            spawn_helpers.probe_term_identity, (pickle.dumps(term), MJ09)
        )
        # structural equality and hashing survive the process boundary...
        assert outcome["equal"] and outcome["hash_equal"]
        # ...but the unpickled term is NOT the child pool's canonical
        # object (the documented hazard)...
        assert not outcome["identical_before_rehydrate"]
        # ...until rehydrate() maps it onto the canonical representative.
        assert outcome["identical_after_rehydrate"]

    def test_deep_term_round_trip(self, spawn_pool):
        from repro.cps.syntax import pp

        term = id_chain(80)
        outcome = spawn_pool.apply(
            spawn_helpers.probe_term_identity, (pickle.dumps(term), pp(term))
        )
        assert outcome["equal"] and outcome["identical_after_rehydrate"]


class TestPMapAcrossSpawn:
    def test_string_keyed_pmap_hash_survives(self, spawn_pool):
        from repro.util.pcollections import pmap

        entries = (("x", 1), ("long-variable-name", 2), ("k", 3))
        payload = pickle.dumps(pmap(dict(entries)))
        outcome = spawn_pool.apply(spawn_helpers.probe_pmap_hash, (payload, entries))
        assert outcome == {"equal": True, "hash_equal": True, "usable_as_key": True}


class TestConfigsAcrossSpawn:
    @pytest.mark.parametrize("preset_name", sorted(PRESETS))
    def test_every_preset_config_round_trips(self, spawn_pool, preset_name):
        config = PRESETS[preset_name].config
        outcome = spawn_pool.apply(
            spawn_helpers.probe_preset_config, (pickle.dumps(config), preset_name)
        )
        assert outcome == {
            "equal": True,
            "hash_equal": True,
            "cache_key_equal": True,
        }


class TestStoresAcrossSpawn:
    @pytest.mark.parametrize("preset_name", ["1cfa", "1cfa-gc", "kcfa-counting-fast"])
    def test_frozen_store_round_trips(self, spawn_pool, preset_name):
        """Frozen PMap stores (plain, GC'd, counting) keep structural
        equality and hashing across processes, before and after
        rehydration."""
        from repro.config import assemble

        config = preset_config(preset_name, "cps")
        program = id_chain(12)
        result = assemble(config, program=program).run(program)
        outcome = spawn_pool.apply(
            spawn_helpers.probe_frozen_store,
            (pickle.dumps(result.fp[1]), 12, preset_name),
        )
        assert outcome["equal"] and outcome["hash_equal"]
        assert outcome["rehydrated_equal"]
