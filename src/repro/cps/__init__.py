"""Continuation-passing-style lambda calculus (the paper's sections 2-8).

* :mod:`repro.cps.syntax`    -- terms (Figure 1) and free variables
* :mod:`repro.cps.parser`    -- an s-expression front end
* :mod:`repro.cps.semantics` -- ``CPSInterface`` and the monadic ``mnext`` (Figure 2)
* :mod:`repro.cps.concrete`  -- the recovered concrete interpreter (section 4)
* :mod:`repro.cps.direct`    -- the hand-written abstract transition of
  section 2.4, kept for the adequacy experiment (E10)
* :mod:`repro.cps.analysis`  -- the k-CFA family and friends (sections 5, 6, 8)
"""

from repro.cps.syntax import AExp, Call, CExp, Exit, Lam, Ref, free_vars
from repro.cps.parser import parse_cexp, parse_program
from repro.cps.semantics import Clo, CPSInterface, PState, inject, mnext, mnext_do
from repro.cps.concrete import ConcreteCPSInterface, interpret, interpret_trace
from repro.cps.analysis import (
    AbstractCPSInterface,
    CPSAnalysis,
    analyse,
    analyse_concrete_collecting,
    analyse_kcfa,
    analyse_shared,
    analyse_with_count,
    analyse_with_gc,
    analyse_zerocfa,
)

__all__ = [
    "AExp",
    "AbstractCPSInterface",
    "CExp",
    "CPSAnalysis",
    "CPSInterface",
    "Call",
    "Clo",
    "ConcreteCPSInterface",
    "Exit",
    "Lam",
    "PState",
    "Ref",
    "analyse",
    "analyse_concrete_collecting",
    "analyse_kcfa",
    "analyse_shared",
    "analyse_with_count",
    "analyse_with_gc",
    "analyse_zerocfa",
    "free_vars",
    "inject",
    "interpret",
    "interpret_trace",
    "mnext",
    "mnext_do",
    "parse_cexp",
    "parse_program",
]
