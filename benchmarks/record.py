"""Record the engine-suite benchmark trajectory to ``BENCH_<n>.json``.

Runs every fixed-point engine / store-impl combination over one workload
per language -- plus the abstract-GC workloads that became possible when
GC was lifted onto the worklist engines -- and writes a machine-readable
baseline, so each PR leaves a ``BENCH_*.json`` behind and regressions
are visible as a series rather than one-off pytest-benchmark artifacts::

    PYTHONPATH=src python benchmarks/record.py            # writes BENCH_3.json
    PYTHONPATH=src python benchmarks/record.py --check    # also gate on speedup

Every workload is assembled through :func:`repro.config.assemble` -- the
benchmark harness exercises the same configuration layer as the CLI and
the tests.

The JSON shape (see PERFORMANCE.md for how to read it)::

    {
      "schema": "engine-suite/1",
      "workloads": {
        "<workload>": {
          "<engine>/<store_impl>": {
            "seconds": float,
            "evaluations": int, "retriggers": int, "configurations": int
          }, ...
        }, ...
      },
      "speedups": { "<workload>": {"depgraph-versioned-over-kleene-persistent": float, ...} }
    }

``--check`` exits non-zero when the depgraph/versioned configuration is
less than ``--min-speedup`` (default 2.0) times faster than kleene on
any workload that runs both -- the CI regression gate.  The ``*-gc``
workloads put the Kleene+GC baseline against GC on the dependency-
tracked engine, so the gate also enforces the "GC at worklist speed"
claim.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.config import AnalysisConfig, assemble
from repro.corpus.cps_programs import id_chain
from repro.corpus.fj_programs import PROGRAMS as FJ_PROGRAMS
from repro.corpus.lam_programs import PROGRAMS as LAM_PROGRAMS

#: Engine/store-impl combinations: kleene has no mutable-store variant.
COMBINATIONS = (
    ("kleene", "persistent"),
    ("worklist", "persistent"),
    ("worklist", "versioned"),
    ("depgraph", "persistent"),
    ("depgraph", "versioned"),
)

#: The GC comparison: the old kleene-only baseline against the
#: dependency-tracked engine on both store implementations.
GC_COMBINATIONS = (
    ("kleene", "persistent"),
    ("depgraph", "persistent"),
    ("depgraph", "versioned"),
)


def _runner(language: str, program, k: int = 1, gc: bool = False, counting: bool = False):
    """A workload runner assembled through the configuration layer."""

    def run(engine: str, impl: str, stats: dict):
        config = AnalysisConfig(
            language=language,
            k=k,
            gc=gc,
            counting=counting,
            engine=engine,
            store_impl="persistent" if engine == "kleene" else impl,
            label=f"bench-{language}-{engine}-{impl}",
        )
        analysis = assemble(config, program=program)
        result = analysis.run(program)
        stats.update(analysis.last_stats)
        return result

    return run


def _workloads() -> dict:
    """Label -> (runner(engine, store_impl, stats) -> result, combos)."""
    chain30 = id_chain(30)
    chain200 = id_chain(200)
    church = LAM_PROGRAMS["church-two-two"]
    visitor = FJ_PROGRAMS["visitor"]
    return {
        "cps-id-chain-30-k1": (_runner("cps", chain30), COMBINATIONS),
        "lam-church-two-two-k1": (_runner("lam", church), COMBINATIONS),
        "fj-visitor-k1": (_runner("fj", visitor), COMBINATIONS),
        # the scaling workload behind the headline speedup: the store
        # grows linearly with the chain, so the persistent path goes
        # quadratic; kleene and the blind worklist are far too slow here
        "cps-id-chain-200-k1": (
            _runner("cps", chain200),
            (("depgraph", "persistent"), ("depgraph", "versioned")),
        ),
        # abstract GC at worklist speed vs the Kleene+GC baseline (the
        # per-evaluation reachability sweep is the same; the worklist
        # engines win by re-evaluating far fewer configurations)
        "cps-id-chain-30-k1-gc": (_runner("cps", chain30, gc=True), GC_COMBINATIONS),
        "lam-church-two-two-k1-gc": (_runner("lam", church, gc=True), GC_COMBINATIONS),
        "fj-visitor-k1-gc": (_runner("fj", visitor, gc=True), GC_COMBINATIONS),
        # counting at worklist speed (write-log saturation)
        "cps-id-chain-30-k1-counting": (
            _runner("cps", chain30, counting=True),
            GC_COMBINATIONS,
        ),
    }


def run_suite() -> dict:
    record: dict = {
        "schema": "engine-suite/1",
        "python": sys.version.split()[0],
        "workloads": {},
        "speedups": {},
    }
    for label, (runner, combos) in _workloads().items():
        rows: dict = {}
        for engine, impl in combos:
            # kleene runs report no store_impl distinction; the suffix
            # keys make every cell self-describing regardless
            stats: dict = {}
            start = time.perf_counter()
            runner(engine, impl, stats)
            seconds = time.perf_counter() - start
            rows[f"{engine}/{impl}"] = {
                "seconds": round(seconds, 6),
                "evaluations": stats.get("evaluations"),
                "retriggers": stats.get("retriggers"),
                "configurations": stats.get("configurations"),
            }
            print(
                f"{label:28s} {engine:>8s}/{impl:<10s} {seconds:8.3f}s "
                f"evals={stats.get('evaluations', '-')}",
                file=sys.stderr,
            )
        record["workloads"][label] = rows
        speedups: dict = {}
        fast = rows.get("depgraph/versioned")
        if fast and fast["seconds"] > 0:
            for reference in ("kleene/persistent", "depgraph/persistent"):
                if reference in rows:
                    name = f"depgraph-versioned-over-{reference.replace('/', '-')}"
                    speedups[name] = round(rows[reference]["seconds"] / fast["seconds"], 2)
        record["speedups"][label] = speedups
    return record


def check(record: dict, min_speedup: float) -> list[str]:
    """The CI gate: depgraph/versioned must beat kleene by ``min_speedup``.

    Applies to every workload that ran both configurations, which
    includes the ``*-gc`` rows -- so a regression in the worklist GC
    path (against the Kleene+GC baseline) fails the build too.
    """
    failures = []
    for label, speedups in record["speedups"].items():
        ratio = speedups.get("depgraph-versioned-over-kleene-persistent")
        if ratio is None:
            continue
        if ratio < min_speedup:
            failures.append(
                f"{label}: depgraph/versioned only {ratio:.2f}x over kleene "
                f"(need >= {min_speedup:.1f}x)"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", default="BENCH_3.json", help="where to write the record")
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero if depgraph/versioned regresses below --min-speedup over kleene",
    )
    parser.add_argument("--min-speedup", type=float, default=2.0)
    args = parser.parse_args(argv)

    record = run_suite()
    with open(args.output, "w") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.output}", file=sys.stderr)

    if args.check:
        failures = check(record, args.min_speedup)
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        if failures:
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
