"""The process-wide metrics registry: counters, gauges, timers, histograms.

One :class:`MetricsRegistry` is the single home for a family of named
instruments.  Each instrument is identified by a metric *name* plus an
optional sorted label set (Prometheus-style), so
``registry.counter("serve_requests_total", method="analyse")`` and the
same call with ``method="batch"`` are two series under one name.

Four instrument kinds, deliberately minimal:

* :class:`Counter` -- monotone ``inc``; the only kind the reconciliation
  tests compare across export surfaces.
* :class:`Gauge` -- ``set`` a point-in-time value, or construct with a
  zero-argument callback so the current value is *pulled* at snapshot
  time (how the intern pool size is exposed without the pool importing
  this module).
* :class:`Histogram` -- bounded sample reservoir with nearest-rank
  percentiles; the one :func:`percentile` implementation here also backs
  the resident server's p50/p99 (``repro.serve.metrics`` imports it).
* :class:`Timer` -- a histogram of seconds plus a context manager, for
  phase durations where only aggregate timing (not a trace) is wanted.

Thread-safety: one lock per registry guards series creation; each
instrument guards its own mutation.  Increments are a lock acquire and
an integer add -- cheap enough to mirror hot-path counters (cache hits,
tier dispatch) without a measurable cost, but still kept out of the
per-evaluation engine loop (engines fill a plain ``stats`` dict; the
driver folds it into the registry once per analysis).
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Iterator
from contextlib import contextmanager


def percentile(samples: list[float], fraction: float) -> float:
    """The nearest-rank percentile of a sample list (0 for no samples)."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
    return ordered[rank]


def _series_key(name: str, labels: dict[str, str]) -> tuple:
    return (name, tuple(sorted(labels.items())))


class Counter:
    """A monotone counter (one labeled series)."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be non-negative: counters only go up)."""
        if amount < 0:
            raise ValueError("counters are monotone; use a gauge to go down")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        """The current count."""
        with self._lock:
            return self._value


class Gauge:
    """A point-in-time value: ``set`` it, or supply a pull callback."""

    __slots__ = ("_lock", "_value", "_callback")

    def __init__(self, callback: Callable[[], float] | None = None) -> None:
        self._lock = threading.Lock()
        self._value = 0.0
        self._callback = callback

    def set(self, value: float) -> None:
        """Record the current value (ignored for callback gauges)."""
        with self._lock:
            self._value = value

    @property
    def value(self) -> float:
        """The current value (pulled from the callback when one is set)."""
        if self._callback is not None:
            return self._callback()
        with self._lock:
            return self._value


class Histogram:
    """A bounded reservoir of observations with nearest-rank percentiles.

    Older samples roll off past :data:`MAX_SAMPLES` so a long-lived
    process's percentiles stay O(1) and current -- the same discipline
    the resident server's latency samples have always followed.
    ``count`` and ``sum`` keep counting past the rolloff.
    """

    __slots__ = ("_lock", "_samples", "_count", "_sum")

    #: Samples kept for the percentiles; older samples roll off.
    MAX_SAMPLES = 1024

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._samples: list[float] = []
        self._count = 0
        self._sum = 0.0

    def observe(self, value: float) -> None:
        """Record one observation."""
        with self._lock:
            self._count += 1
            self._sum += value
            self._samples.append(value)
            if len(self._samples) > self.MAX_SAMPLES:
                del self._samples[: len(self._samples) - self.MAX_SAMPLES]

    def percentile(self, fraction: float) -> float:
        """The nearest-rank percentile over the retained samples."""
        with self._lock:
            return percentile(self._samples, fraction)

    @property
    def count(self) -> int:
        """Observations ever made (not capped by the reservoir)."""
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        """Sum of all observations ever made."""
        with self._lock:
            return self._sum

    def samples(self) -> list[float]:
        """A copy of the retained samples (for custom summaries)."""
        with self._lock:
            return list(self._samples)


class Timer:
    """A histogram of seconds with a ``with``-block convenience."""

    __slots__ = ("histogram",)

    def __init__(self) -> None:
        self.histogram = Histogram()

    @contextmanager
    def time(self) -> Iterator[None]:
        """Observe the wall-clock duration of the ``with`` body."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.histogram.observe(time.perf_counter() - start)

    def observe(self, seconds: float) -> None:
        """Record an externally measured duration."""
        self.histogram.observe(seconds)


class MetricsRegistry:
    """A named family of instruments with snapshot and Prometheus export.

    Series are get-or-created: the first ``counter(name, **labels)``
    call creates the series, later calls return the same object, so
    call sites never need to pre-register.  A ``kind`` collision (the
    same name used as both counter and gauge) is a programming error
    and raises.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._series: dict[tuple, tuple[str, Any]] = {}
        self._help: dict[str, str] = {}

    def _get(self, kind: str, name: str, labels: dict, factory: Callable) -> Any:
        key = _series_key(name, labels)
        with self._lock:
            entry = self._series.get(key)
            if entry is None:
                instrument = factory()
                self._series[key] = (kind, instrument)
                return instrument
            existing_kind, instrument = entry
            if existing_kind != kind:
                raise TypeError(
                    f"metric {name!r} already registered as {existing_kind}, "
                    f"requested as {kind}"
                )
            return instrument

    def describe(self, name: str, help_text: str) -> None:
        """Attach a HELP line to a metric name (Prometheus export only)."""
        with self._lock:
            self._help[name] = help_text

    def counter(self, name: str, **labels: str) -> Counter:
        """Get or create the counter series ``name{labels}``."""
        return self._get("counter", name, labels, Counter)

    def gauge(
        self, name: str, callback: Callable[[], float] | None = None, **labels: str
    ) -> Gauge:
        """Get or create the gauge series ``name{labels}``.

        A ``callback`` supplied on the creating call makes this a pull
        gauge; on later calls it is ignored (the series already exists).
        """
        return self._get("gauge", name, labels, lambda: Gauge(callback))

    def histogram(self, name: str, **labels: str) -> Histogram:
        """Get or create the histogram series ``name{labels}``."""
        return self._get("histogram", name, labels, Histogram)

    def timer(self, name: str, **labels: str) -> Timer:
        """Get or create the timer series ``name{labels}``."""
        return self._get("timer", name, labels, Timer)

    def _sorted_series(self) -> list[tuple[str, tuple, str, Any]]:
        with self._lock:
            items = [
                (name, label_items, kind, instrument)
                for (name, label_items), (kind, instrument) in self._series.items()
            ]
        return sorted(items, key=lambda row: (row[0], row[1]))

    def snapshot(self) -> dict:
        """Every series' current value as one nested, sorted document.

        Shape: ``{name: {labelset: value}}`` where ``labelset`` is the
        ``k=v,...`` rendering (empty string for unlabeled series) and
        ``value`` is an int/float for counters and gauges, or a
        ``{count, sum, p50, p99}`` dict for histograms and timers.
        """
        doc: dict[str, dict[str, Any]] = {}
        for name, label_items, kind, instrument in self._sorted_series():
            labelset = ",".join(f"{k}={v}" for k, v in label_items)
            if kind in ("histogram", "timer"):
                hist = instrument.histogram if kind == "timer" else instrument
                value: Any = {
                    "count": hist.count,
                    "sum": round(hist.sum, 6),
                    "p50": round(hist.percentile(0.50), 6),
                    "p99": round(hist.percentile(0.99), 6),
                }
            else:
                value = instrument.value
            doc.setdefault(name, {})[labelset] = value
        return doc

    def prometheus(self) -> str:
        """The registry in Prometheus text exposition format (version 0.0.4).

        Histograms and timers export as ``<name>_count``/``<name>_sum``
        plus nearest-rank ``{quantile="..."}`` series (summary-style);
        counters and gauges export as-is.  Series are emitted in sorted
        (name, labelset) order so the output is deterministic for tests.
        """
        lines: list[str] = []
        last_name = None
        with self._lock:
            help_texts = dict(self._help)
        for name, label_items, kind, instrument in self._sorted_series():
            if name != last_name:
                help_text = help_texts.get(name)
                if help_text:
                    lines.append(f"# HELP {name} {help_text}")
                prom_type = "summary" if kind in ("histogram", "timer") else kind
                lines.append(f"# TYPE {name} {prom_type}")
                last_name = name
            labels = dict(label_items)
            if kind in ("histogram", "timer"):
                hist = instrument.histogram if kind == "timer" else instrument
                for quantile in (0.5, 0.99):
                    q_labels = dict(labels, quantile=str(quantile))
                    lines.append(
                        f"{name}{_render_labels(q_labels)} "
                        f"{_render_value(hist.percentile(quantile))}"
                    )
                lines.append(
                    f"{name}_count{_render_labels(labels)} {hist.count}"
                )
                lines.append(
                    f"{name}_sum{_render_labels(labels)} {_render_value(hist.sum)}"
                )
            else:
                lines.append(
                    f"{name}{_render_labels(labels)} "
                    f"{_render_value(instrument.value)}"
                )
        return "\n".join(lines) + "\n" if lines else ""

    def reset(self) -> None:
        """Drop every series (tests and long-lived process hygiene)."""
        with self._lock:
            self._series.clear()


def _render_labels(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    body = ",".join(
        f'{key}="{_escape_label(str(value))}"' for key, value in sorted(labels.items())
    )
    return "{" + body + "}"


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _render_value(value: float) -> str:
    if isinstance(value, bool):  # pragma: no cover - guards accidental bools
        return str(int(value))
    if isinstance(value, int):
        return str(value)
    if value == int(value):
        return str(int(value))
    return repr(value)


#: The process-wide registry CLI runs and the engine driver fold into.
#: The resident server deliberately does *not* use it for its request
#: counters -- each server owns a private registry so parallel test
#: servers in one process cannot bleed into each other.
_DEFAULT = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    """The process-wide registry (one per interpreter).

    Use installs the process-level pull gauges (currently the intern
    pool's size/hits/misses) when absent -- lazily, so importing this
    module costs nothing, and idempotently, so a test that ``reset()``s
    the default registry gets them back on the next call here.
    """
    if ("intern_pool_size", ()) not in _DEFAULT._series:
        from repro.util.intern import register_metrics

        register_metrics(_DEFAULT)
    return _DEFAULT
