"""An s-expression front end for CPS terms.

Concrete syntax::

    call ::= (exit)
           | (aexp aexp ...)
    aexp ::= VAR
           | (lambda (VAR ...) call)       -- 'lambda' or the Greek letter

Comments run from ``;`` to end of line.  The parser is a plain
tokenizer + recursive descent over nested lists; errors carry the
offending token for debuggability.
"""

from __future__ import annotations

from repro.cps.syntax import AExp, Call, CExp, Exit, Lam, Ref
from repro.util.intern import intern

LAMBDA_KEYWORDS = ("lambda", "λ")


class ParseError(Exception):
    """Raised on malformed input; message names the offending fragment."""


def tokenize(source: str) -> list[str]:
    """Split s-expression source into parenthesis and atom tokens."""
    out: list[str] = []
    i = 0
    while i < len(source):
        ch = source[i]
        if ch == ";":
            while i < len(source) and source[i] != "\n":
                i += 1
        elif ch in "()":
            out.append(ch)
            i += 1
        elif ch.isspace():
            i += 1
        else:
            j = i
            while j < len(source) and not source[j].isspace() and source[j] not in "();":
                j += 1
            out.append(source[i:j])
            i = j
    return out


def read_sexp(tokens: list[str], index: int = 0):
    """Read one nested-list s-expression; returns ``(sexp, next_index)``."""
    if index >= len(tokens):
        raise ParseError("unexpected end of input")
    token = tokens[index]
    if token == "(":
        items = []
        index += 1
        while True:
            if index >= len(tokens):
                raise ParseError("unclosed '('")
            if tokens[index] == ")":
                return items, index + 1
            item, index = read_sexp(tokens, index)
            items.append(item)
    if token == ")":
        raise ParseError("unexpected ')'")
    return token, index + 1


def _to_aexp(sexp) -> AExp:
    if isinstance(sexp, str):
        if sexp in LAMBDA_KEYWORDS or sexp == "exit":
            raise ParseError(f"keyword {sexp!r} is not an atomic expression")
        return intern(Ref(sexp))
    if isinstance(sexp, list) and sexp and sexp[0] in LAMBDA_KEYWORDS:
        if len(sexp) != 3:
            raise ParseError(f"lambda needs a parameter list and a body: {sexp!r}")
        params = sexp[1]
        if not isinstance(params, list) or not all(isinstance(p, str) for p in params):
            raise ParseError(f"malformed parameter list: {params!r}")
        if len(set(params)) != len(params):
            raise ParseError(f"duplicate parameter in {params!r}")
        return intern(Lam(tuple(params), _to_cexp(sexp[2])))
    raise ParseError(f"expected an atomic expression, got {sexp!r}")


def _to_cexp(sexp) -> CExp:
    if not isinstance(sexp, list) or not sexp:
        raise ParseError(f"a call expression must be a non-empty list: {sexp!r}")
    if sexp == ["exit"]:
        return intern(Exit())
    if sexp[0] in LAMBDA_KEYWORDS and len(sexp) == 3:
        # A bare lambda in call position means the program is malformed;
        # calls must apply something.
        raise ParseError("a lambda is not a call expression; apply it to arguments")
    return intern(Call(_to_aexp(sexp[0]), tuple(_to_aexp(arg) for arg in sexp[1:])))


def parse_cexp(source: str) -> CExp:
    """Parse a single call expression (a whole CPS program)."""
    tokens = tokenize(source)
    if not tokens:
        raise ParseError("empty input")
    sexp, index = read_sexp(tokens)
    if index != len(tokens):
        raise ParseError(f"trailing input after program: {tokens[index:]!r}")
    return _to_cexp(sexp)


def parse_aexp(source: str) -> AExp:
    """Parse a single atomic expression (a variable or lambda)."""
    tokens = tokenize(source)
    if not tokens:
        raise ParseError("empty input")
    sexp, index = read_sexp(tokens)
    if index != len(tokens):
        raise ParseError(f"trailing input after expression: {tokens[index:]!r}")
    return _to_aexp(sexp)


def parse_program(source: str) -> CExp:
    """Alias for :func:`parse_cexp`; the entry point used by examples."""
    return parse_cexp(source)
