"""The Featherweight Java transition, staged (see :mod:`repro.core.fused`).

:func:`build_fj_fused` unfolds :func:`repro.fj.semantics.mnext_fj` over a
fixed :class:`~repro.fj.analysis.AbstractFJInterface`: eval/continue
dispatch, method dispatch through the class table, object allocation
(one store cell per field) and cast pruning, all as plain control flow.
Nondeterminism (variable/field/continuation fetches) becomes iteration;
every store observation and mutation goes through the interface's
``store_like``, so read/write logs match the monadic path exactly
(corpus-checked).
"""

from __future__ import annotations

from typing import Any

from repro.core.fused import (
    FusedTransition,
    make_pusher,
    register_fused,
    thread_bindings,
)
from repro.fj.machine import (
    CastF,
    FieldF,
    FieldVar,
    HaltF,
    InvokeArgF,
    InvokeRcvF,
    KontTag,
    NewArgF,
    ObjV,
    PState,
    SiteContext,
)
from repro.fj.syntax import Cast, FieldAccess, Invoke, New, VarE
from repro.util.pcollections import pmap


def build_fj_fused(interface: Any) -> FusedTransition:
    """Stage ``mnext_fj`` for one assembled FJ interface."""
    table = interface.table
    valloc = interface.addressing.valloc
    advance = interface.addressing.advance
    store_like = interface.store_like
    fetch = store_like.fetch
    bind = store_like.bind
    push = make_pusher(PState, KontTag, valloc, bind)

    def dispatch(out: list, site: Any, receiver: ObjV, arg_values: tuple,
                 parent_ka: Any, guts: Any, store: Any) -> None:
        """Method dispatch: mbody lookup, bind ``this`` and parameters."""
        resolved = table.mbody(site.method, receiver.cls)
        if resolved is None:
            return  # stuck: no such method
        mdef, _owner = resolved
        params = mdef.param_names()
        if len(params) != len(arg_values):
            return  # stuck: arity mismatch
        guts2 = advance(receiver, SiteContext(site), guts)
        names = ("this",) + params
        addrs = [valloc(name, guts2) for name in names]
        store2 = thread_bindings(
            store_like, store, addrs, (receiver,) + arg_values
        )
        nxt = PState(mdef.body, pmap(zip(names, addrs)), parent_ka)
        out.append(((nxt, guts2), store2))

    def allocate(out: list, pstate: PState, cls: str, arg_values: tuple,
                 parent_ka: Any, guts: Any, store: Any) -> None:
        """``new C(v...)``: one cell per field, return the object (no tick)."""
        fields = table.fields(cls)
        if len(fields) != len(arg_values):
            return  # stuck: wrong number of fields
        addrs = [valloc(FieldVar(cls, fld), guts) for _typ, fld in fields]
        store2 = thread_bindings(store_like, store, addrs, arg_values)
        nxt = PState(ObjV(cls, tuple(addrs)), pstate.env, parent_ka)
        out.append(((nxt, guts), store2))

    def step(pstate: PState, guts: Any, store: Any) -> list:
        ctrl = pstate.ctrl
        env = pstate.env
        ka = pstate.ka
        out: list = []

        # -- eval mode ------------------------------------------------------
        if isinstance(ctrl, VarE):
            if ctrl.name not in env:
                return []
            for value in fetch(store, env[ctrl.name]):
                out.append(((PState(value, env, ka), guts), store))
            return out
        if isinstance(ctrl, FieldAccess):
            push(out, ctrl, FieldF(ctrl.fld, ka), ctrl.obj, env, guts, store)
            return out
        if isinstance(ctrl, Invoke):
            frame = InvokeRcvF(ctrl, ctrl.method, ctrl.args, env, ka)
            push(out, ctrl, frame, ctrl.obj, env, guts, store)
            return out
        if isinstance(ctrl, New):
            if not ctrl.args:
                allocate(out, pstate, ctrl.cls, (), ka, guts, store)
            else:
                frame = NewArgF(ctrl, ctrl.cls, ctrl.args[1:], (), env, ka)
                push(out, ctrl, frame, ctrl.args[0], env, guts, store)
            return out
        if isinstance(ctrl, Cast):
            push(out, ctrl, CastF(ctrl.cls, ka), ctrl.obj, env, guts, store)
            return out

        # -- return mode ----------------------------------------------------
        if isinstance(ctrl, ObjV):
            for frame in fetch(store, ka):
                if isinstance(frame, HaltF):
                    out.append(((pstate, guts), store))
                elif isinstance(frame, FieldF):
                    try:
                        index = table.field_index(ctrl.cls, frame.fld)
                    except Exception:
                        continue  # stuck: no such field
                    for value in fetch(store, ctrl.field_addrs[index]):
                        nxt = PState(value, env, frame.parent)
                        out.append(((nxt, guts), store))
                elif isinstance(frame, InvokeRcvF):
                    if not frame.args:
                        dispatch(out, frame.site, ctrl, (), frame.parent,
                                 guts, store)
                    else:
                        next_frame = InvokeArgF(
                            frame.site, frame.method, ctrl, frame.args[1:], (),
                            frame.env, frame.parent,
                        )
                        push(out, frame.args[0], next_frame, frame.args[0],
                             frame.env, guts, store)
                elif isinstance(frame, InvokeArgF):
                    done = frame.done + (ctrl,)
                    if not frame.remaining:
                        dispatch(out, frame.site, frame.receiver, done,
                                 frame.parent, guts, store)
                    else:
                        next_frame = InvokeArgF(
                            frame.site, frame.method, frame.receiver,
                            frame.remaining[1:], done, frame.env, frame.parent,
                        )
                        push(out, frame.remaining[0], next_frame,
                             frame.remaining[0], frame.env, guts, store)
                elif isinstance(frame, NewArgF):
                    done = frame.done + (ctrl,)
                    if not frame.remaining:
                        allocate(out, pstate, frame.cls, done, frame.parent,
                                 guts, store)
                    else:
                        next_frame = NewArgF(
                            frame.site, frame.cls, frame.remaining[1:], done,
                            frame.env, frame.parent,
                        )
                        push(out, frame.remaining[0], next_frame,
                             frame.remaining[0], frame.env, guts, store)
                elif isinstance(frame, CastF):
                    if table.is_subtype(ctrl.cls, frame.cls):
                        nxt = PState(ctrl, env, frame.parent)
                        out.append(((nxt, guts), store))
                    # else: cast failure -- the branch is pruned
            return out
        return []  # stuck: unrecognized control

    return FusedTransition(step, language="fj")


register_fused("fj", build_fj_fused)
