"""Monad laws and combinator behaviour for the monad library (paper section 3).

The three monad laws -- left identity, right identity, associativity --
are property-tested for every instance, with monadic values compared by
*running* them (functions are not comparable directly).  MonadPlus and
MonadState laws, the transformer stack, ``getsNDSet`` and the
generator-replay do-notation get their own suites.
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.monads import (
    Identity,
    Just,
    LIST_MONOID,
    ListMonad,
    MaybeMonad,
    Monoid,
    NOTHING,
    Reader,
    State,
    StateT,
    StorePassing,
    Writer,
    ap,
    filter_m,
    fmap,
    fold_m,
    gets_nd_set,
    guard,
    kleisli,
    map_m,
    msum,
    replicate_m,
    run_do,
    sequence_,
    sequence_m,
    when,
)

ints = st.integers(-10, 10)


def run_value(monad, mv):
    """Project a monadic value to comparable data for law checking."""
    if isinstance(monad, (Identity, ListMonad, MaybeMonad)):
        return mv
    if isinstance(monad, Writer):
        return mv
    if isinstance(monad, Reader):
        return mv(7)  # an arbitrary but fixed environment
    if isinstance(monad, State):
        return mv(3)
    if isinstance(monad, StorePassing):
        return monad.run(mv, 0, frozenset())
    if isinstance(monad, StateT):
        return monad.run(mv, 3)
    raise TypeError(monad)


MONADS = [
    Identity(),
    ListMonad(),
    MaybeMonad(),
    Reader(),
    Writer(),
    State(),
    StateT(ListMonad()),
    StorePassing(),
]


@pytest.mark.parametrize("monad", MONADS, ids=lambda m: type(m).__name__)
def test_monad_laws(monad):
    # f and g are Kleisli arrows whose effects differ per monad-free value
    def f(x):
        return monad.unit(x + 1)

    def g(x):
        return monad.unit(x * 2)

    @given(ints)
    def laws(a):
        # left identity: unit a >>= f  ==  f a
        assert run_value(monad, monad.bind(monad.unit(a), f)) == run_value(monad, f(a))
        # right identity: m >>= unit  ==  m
        m = f(a)
        assert run_value(monad, monad.bind(m, monad.unit)) == run_value(monad, m)
        # associativity
        lhs = monad.bind(monad.bind(m, f), g)
        rhs = monad.bind(m, lambda x: monad.bind(f(x), g))
        assert run_value(monad, lhs) == run_value(monad, rhs)

    laws()


class TestListMonad:
    def setup_method(self):
        self.m = ListMonad()

    def test_unit(self):
        assert self.m.unit(3) == [3]

    def test_bind_concatenates(self):
        assert self.m.bind([1, 2], lambda x: [x, x + 10]) == [1, 11, 2, 12]

    def test_mzero_annihilates_bind(self):
        assert self.m.bind(self.m.mzero(), lambda x: [x]) == []

    def test_mplus(self):
        assert self.m.mplus([1], [2, 3]) == [1, 2, 3]

    @given(st.lists(ints, max_size=5), st.lists(ints, max_size=5))
    def test_mplus_associative_with_mzero_unit(self, xs, ys):
        m = self.m
        assert m.mplus(m.mzero(), xs) == xs
        assert m.mplus(xs, m.mzero()) == xs
        assert m.mplus(m.mplus(xs, ys), []) == m.mplus(xs, m.mplus(ys, []))


class TestMaybeMonad:
    def setup_method(self):
        self.m = MaybeMonad()

    def test_nothing_short_circuits(self):
        assert self.m.bind(NOTHING, lambda x: Just(x)) is NOTHING

    def test_just_passes_through(self):
        assert self.m.bind(Just(2), lambda x: Just(x * 2)) == Just(4)

    def test_mplus_prefers_first_just(self):
        assert self.m.mplus(Just(1), Just(2)) == Just(1)
        assert self.m.mplus(NOTHING, Just(2)) == Just(2)


class TestStateMonad:
    def setup_method(self):
        self.m = State()

    def test_get_put(self):
        mv = self.m.bind(self.m.get_state(), lambda s: self.m.put_state(s + 1))
        assert self.m.run(mv, 10) == (None, 11)

    def test_gets_projects(self):
        assert self.m.eval(self.m.gets(lambda s: s * 2), 21) == 42

    def test_modify(self):
        assert self.m.exec(self.m.modify(lambda s: s + 5), 1) == 6

    def test_sequencing_threads_state(self):
        m = self.m
        mv = m.then(m.modify(lambda s: s + 1), m.then(m.modify(lambda s: s * 10), m.get_state()))
        assert m.eval(mv, 2) == 30


class TestReaderWriter:
    def test_reader_ask(self):
        r = Reader()
        mv = r.bind(r.ask(), lambda env: r.unit(env + 1))
        assert r.run(mv, 41) == 42

    def test_reader_local(self):
        r = Reader()
        mv = r.local(lambda env: env * 2, r.ask())
        assert r.run(mv, 21) == 42

    def test_writer_tell_accumulates(self):
        w = Writer()
        mv = w.then(w.tell(("a",)), w.then(w.tell(("b",)), w.unit(1)))
        assert w.run(mv) == (1, ("a", "b"))

    def test_writer_custom_monoid(self):
        w = Writer(Monoid(mempty=0, mappend=lambda a, b: a + b))
        mv = w.then(w.tell(3), w.then(w.tell(4), w.unit("done")))
        assert w.run(mv) == ("done", 7)


class TestStateT:
    def test_statet_over_list_branches_with_state(self):
        m = StateT(ListMonad())
        # nondeterministically pick, then record the pick in the state
        mv = m.bind(
            m.lift([10, 20]),
            lambda x: m.then(m.modify(lambda s: s + [x]), m.unit(x)),
        )
        assert m.run(mv, []) == [(10, [10]), (20, [20])]

    def test_statet_mzero_empty(self):
        m = StateT(ListMonad())
        assert m.run(m.mzero(), 0) == []

    def test_statet_mplus(self):
        m = StateT(ListMonad())
        assert m.run(m.mplus(m.unit(1), m.unit(2)), 9) == [(1, 9), (2, 9)]

    def test_statet_over_identity_not_monadplus(self):
        m = StateT(Identity())
        with pytest.raises(TypeError):
            m.mzero()

    def test_lift_threads_state_unchanged(self):
        m = StateT(ListMonad())
        assert m.run(m.lift([1, 2]), "s") == [(1, "s"), (2, "s")]


class TestStorePassing:
    """The two-level analysis monad g -> s -> [((a, g), s)] (paper 5.3.1)."""

    def setup_method(self):
        self.sp = StorePassing()

    def test_desugared_shape(self):
        result = self.sp.run(self.sp.unit("a"), "guts", "store")
        assert result == [(("a", "guts"), "store")]

    def test_guts_and_store_levels_independent(self):
        sp = self.sp
        mv = sp.bind(
            sp.get_guts(),
            lambda g: sp.then(
                sp.modify_store(lambda s: s | {g}),
                sp.gets_store(lambda s: sorted(s)),
            ),
        )
        assert sp.run(mv, 7, frozenset()) == [((([7]), 7), frozenset([7]))]

    def test_modify_guts(self):
        sp = self.sp
        mv = sp.then(sp.modify_guts(lambda t: t + 1), sp.get_guts())
        assert sp.run(mv, 0, None) == [((1, 1), None)]

    def test_gets_nd_store_branches(self):
        sp = self.sp
        results = sp.run(sp.gets_nd_store(lambda s: sorted(s)), 0, frozenset([1, 2]))
        assert results == [((1, 0), frozenset([1, 2])), ((2, 0), frozenset([1, 2]))]

    def test_gets_nd_store_empty_kills_branch(self):
        assert self.sp.run(self.sp.gets_nd_store(lambda s: []), 0, ()) == []

    def test_mzero_prunes(self):
        sp = self.sp
        mv = sp.bind(sp.unit(1), lambda _x: sp.mzero())
        assert sp.run(mv, 0, ()) == []


class TestCombinators:
    def setup_method(self):
        self.lm = ListMonad()

    def test_fmap(self):
        assert fmap(self.lm, lambda x: x + 1, [1, 2]) == [2, 3]

    def test_ap(self):
        fs = [lambda x: x + 1, lambda x: x * 10]
        assert ap(self.lm, fs, [1, 2]) == [2, 3, 10, 20]

    def test_map_m_cartesian(self):
        result = map_m(self.lm, lambda x: [x, -x], [1, 2])
        assert result == [[1, 2], [1, -2], [-1, 2], [-1, -2]]

    def test_map_m_empty(self):
        assert map_m(self.lm, lambda x: [x], []) == [[]]

    def test_sequence_m(self):
        assert sequence_m(self.lm, [[1], [2, 3]]) == [[1, 2], [1, 3]]

    def test_sequence_discard(self):
        assert sequence_(self.lm, [[1], [2]]) == [None]

    def test_msum(self):
        assert msum(self.lm, [[1], [], [2, 3]]) == [1, 2, 3]

    def test_guard(self):
        assert guard(self.lm, True) == [None]
        assert guard(self.lm, False) == []

    def test_when(self):
        assert when(self.lm, False, [1, 2]) == [None]
        assert when(self.lm, True, [1, 2]) == [1, 2]

    def test_filter_m_powerset(self):
        # the classic: filtering with both True and False enumerates subsets
        subsets = filter_m(self.lm, lambda _x: [True, False], [1, 2])
        assert sorted(map(tuple, subsets)) == [(), (1,), (1, 2), (2,)]

    def test_fold_m(self):
        result = fold_m(self.lm, lambda acc, x: [acc + x], 0, [1, 2, 3])
        assert result == [6]

    def test_fold_m_branches(self):
        result = fold_m(self.lm, lambda acc, x: [acc + x, acc - x], 0, [1, 2])
        assert sorted(result) == [-3, -1, 1, 3]

    def test_replicate_m(self):
        assert replicate_m(self.lm, 2, [0, 1]) == [[0, 0], [0, 1], [1, 0], [1, 1]]

    def test_kleisli(self):
        h = kleisli(self.lm, lambda x: [x + 1], lambda y: [y, y * 10])
        assert h(1) == [2, 20]

    def test_gets_nd_set_requires_capabilities(self):
        with pytest.raises(TypeError):
            gets_nd_set(ListMonad(), lambda s: [s])
        with pytest.raises(TypeError):
            gets_nd_set(State(), lambda s: [s])

    def test_gets_nd_set_on_statet_list(self):
        m = StateT(ListMonad())
        assert m.run(gets_nd_set(m, lambda s: sorted(s)), {2, 1}) == [
            (1, {1, 2}),
            (2, {1, 2}),
        ]


class TestDoNotation:
    def test_do_identity(self):
        m = Identity()

        def block():
            x = yield m.unit(1)
            y = yield m.unit(2)
            return x + y

        assert run_do(m, block) == 3

    def test_do_list_replays_all_branches(self):
        m = ListMonad()

        def block():
            x = yield [1, 2]
            y = yield [10, 20]
            return x + y

        assert run_do(m, block) == [11, 21, 12, 22]

    def test_do_list_branch_dependent_binds(self):
        m = ListMonad()

        def block():
            x = yield [1, 2]
            y = yield list(range(x))  # later binds may depend on earlier picks
            return (x, y)

        assert run_do(m, block) == [(1, 0), (2, 0), (2, 1)]

    def test_do_with_args(self):
        m = Identity()

        def block(a, b):
            x = yield m.unit(a)
            return x + b

        assert run_do(m, block, 1, b=2) == 3

    def test_do_maybe_short_circuit(self):
        m = MaybeMonad()

        def block():
            x = yield Just(1)
            _ = yield NOTHING
            return x  # never reached

        assert run_do(m, block) is NOTHING

    def test_do_state_threads(self):
        m = State()

        def block():
            s = yield m.get_state()
            yield m.put_state(s + 1)
            t = yield m.get_state()
            return t

        assert m.run(run_do(m, block), 41) == (42, 42)

    def test_do_storepassing(self):
        sp = StorePassing()

        def block():
            g = yield sp.get_guts()
            yield sp.modify_store(lambda s: s + (g,))
            v = yield sp.gets_nd_store(lambda s: s)
            return v

        assert sp.run(run_do(sp, block), "g0", ()) == [(("g0", "g0"), ("g0",))]

    def test_list_monoid(self):
        assert LIST_MONOID.mappend((1,), (2,)) == (1, 2)
        assert LIST_MONOID.mempty == ()


class TestMonadLawsEffectful:
    """The three laws under *effectful* Kleisli arrows (the fused path's spec).

    The generic law test above uses pure arrows (``unit . f``), for which
    the laws hold in any pointed functor.  The staged transition backend
    (``repro.core.fused``) unfolds binds whose arrows branch, read and
    write -- so the laws are pinned here for exactly the three monads the
    analyses execute: ``ListMonad`` (nondeterminism), ``StateT``
    (threading) and ``StorePassing`` (the full two-level stack).
    """

    def _check(self, monad, run, unit, f, g, value):
        # left identity: unit a >>= f == f a
        assert run(monad.bind(unit(value), f)) == run(f(value))
        # right identity: m >>= unit == m
        m = f(value)
        assert run(monad.bind(m, monad.unit)) == run(m)
        # associativity: (m >>= f) >>= g == m >>= (\x -> f x >>= g)
        lhs = monad.bind(monad.bind(m, f), g)
        rhs = monad.bind(m, lambda x: monad.bind(f(x), g))
        assert run(lhs) == run(rhs)

    @given(ints)
    def test_list_monad_laws_with_branching_arrows(self, a):
        m = ListMonad()
        self._check(
            m,
            run=lambda mv: mv,
            unit=m.unit,
            f=lambda x: [x, x + 1, x + 2],  # widens
            g=lambda y: [] if y % 2 else [y, -y],  # prunes and branches
            value=a,
        )

    @given(ints)
    def test_statet_laws_with_state_effects(self, a):
        m = StateT(ListMonad())
        self._check(
            m,
            run=lambda mv: m.run(mv, 3),
            unit=m.unit,
            # reads the state, writes it back changed, branches underneath
            f=lambda x: m.bind(m.get_state(), lambda s: m.bind(
                m.put_state(s + 1), lambda _: m.lift([x + s, x - s]))),
            g=lambda y: m.bind(m.modify(lambda s: s * 2), lambda _: m.unit(y)),
            value=a,
        )

    @given(ints)
    def test_storepassing_laws_with_guts_and_store_effects(self, a):
        sp = StorePassing()

        def f(x):  # tick-like: advance the guts, then branch on the store
            return sp.bind(
                sp.modify_guts(lambda g: g + 1),
                lambda _: sp.gets_nd_store(lambda s: sorted(s | {x})),
            )

        def g(y):  # bind-like: grow the store, return the value
            return sp.bind(
                sp.modify_store(lambda s: s | {y}), lambda _: sp.unit(y)
            )

        self._check(
            sp,
            run=lambda mv: sp.run(mv, 0, frozenset({5})),
            unit=sp.unit,
            f=f,
            g=g,
            value=a,
        )


class TestRunDoReplaySemantics:
    """``run_do``'s replay model, pinned (the cost the fused path removes).

    A generator cannot be forked, so :func:`repro.core.monads.run_do`
    re-executes the do-block from scratch for every nondeterministic
    branch, feeding back the prefix of already-chosen values.  These
    tests pin both halves of that contract: the *count* of replays
    (O(branches x binds) generator executions -- the documented cost
    model in ``core/monads.py`` and PERFORMANCE.md) and the *discipline*
    it imposes (the block must be deterministic in its fed-back inputs).
    """

    def test_replay_count_is_one_plus_branch_prefixes(self):
        m = ListMonad()
        executions = []

        def block():
            executions.append("start")
            x = yield [1, 2, 3]
            y = yield [10, 20]
            return x + y

        result = run_do(m, block)
        assert result == [11, 21, 12, 22, 13, 23]
        # one execution discovers the first bind, one per prefix after:
        # 1 (initial) + 3 (per x, to reach the y bind) + 6 (per (x, y),
        # to reach the return) = 10 generator runs for 6 results
        assert len(executions) == 1 + 3 + 6

    def test_replay_feeds_back_chosen_prefixes_in_order(self):
        m = ListMonad()
        seen = []

        def block():
            x = yield [1, 2]
            seen.append(x)
            y = yield [x * 10]
            seen.append((x, y))
            return y

        assert run_do(m, block) == [10, 20]
        # per x-branch: one partial run discovers the second bind (bare
        # x), then the completing run replays the whole prefix
        assert seen == [1, 1, (1, 10), 2, 2, (2, 20)]

    def test_deterministic_blocks_are_replay_safe(self):
        """The contract: side-effect-free blocks give branch-independent
        results.  A block whose choices depend on mutated external state
        would violate the discipline; the semantics in this package are
        pure in their fed-back inputs, which the fused backends rely on
        when they stage the block into a single pass."""
        m = ListMonad()

        def block(base):
            x = yield [base, base + 1]
            y = yield [100]
            return x + y

        assert run_do(m, block, 5) == [105, 106]
        assert run_do(m, block, 5) == [105, 106]  # replays are idempotent
