"""``Addressable`` instances: polyvariance and context policies (paper 6.1)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.addresses import (
    Binding,
    BoundedNat,
    ConcreteAddressing,
    KCFA,
    LContext,
    ZeroCFA,
)


class FakeState:
    """A minimal HasContextKey carrier for exercising allocators."""

    def __init__(self, key):
        self._key = key

    def context_key(self):
        return self._key


labels = st.sampled_from(["c1", "c2", "c3", "c4"])
label_lists = st.lists(labels, max_size=6)


class TestConcreteAddressing:
    def test_initial_context(self):
        assert ConcreteAddressing().tau0() == 0

    def test_advance_increments(self):
        a = ConcreteAddressing()
        assert a.advance(None, FakeState("c"), 5) == 6

    def test_unique_addresses_per_allocation(self):
        a = ConcreteAddressing()
        ctx = a.tau0()
        seen = set()
        for step in range(10):
            seen.add(a.valloc("x", ctx))
            ctx = a.advance(None, FakeState("c"), ctx)
        assert len(seen) == 10

    def test_distinct_vars_distinct_addresses(self):
        a = ConcreteAddressing()
        assert a.valloc("x", 3) != a.valloc("y", 3)


class TestZeroCFA:
    def test_variable_is_its_own_address(self):
        z = ZeroCFA()
        assert z.valloc("x", z.tau0()) == "x"

    def test_context_is_trivial(self):
        z = ZeroCFA()
        assert z.advance(None, FakeState("anything"), z.tau0()) == ()


class TestKCFA:
    def test_k_zero_has_unit_context(self):
        k0 = KCFA(0)
        assert k0.advance(None, FakeState("c1"), k0.tau0()) == ()

    def test_k_one_remembers_last_call(self):
        k1 = KCFA(1)
        ctx = k1.advance(None, FakeState("c1"), k1.tau0())
        assert ctx == ("c1",)
        ctx = k1.advance(None, FakeState("c2"), ctx)
        assert ctx == ("c2",)

    def test_k_two_truncates(self):
        k2 = KCFA(2)
        ctx = ()
        for label in ("c1", "c2", "c3"):
            ctx = k2.advance(None, FakeState(label), ctx)
        assert ctx == ("c3", "c2")

    def test_address_pairs_var_and_context(self):
        k1 = KCFA(1)
        addr = k1.valloc("x", ("c1",))
        assert addr == Binding("x", ("c1",))

    def test_negative_k_rejected(self):
        with pytest.raises(ValueError):
            KCFA(-1)

    @given(label_lists)
    def test_context_never_exceeds_k(self, labels_seq):
        k = KCFA(2)
        ctx = k.tau0()
        for label in labels_seq:
            ctx = k.advance(None, FakeState(label), ctx)
            assert len(ctx) <= 2

    @given(label_lists)
    def test_context_is_suffix_of_call_history(self, labels_seq):
        k = KCFA(3)
        ctx = k.tau0()
        for label in labels_seq:
            ctx = k.advance(None, FakeState(label), ctx)
        expected = tuple(reversed(labels_seq))[:3]
        assert ctx == expected


class TestLContext:
    def test_fresh_sites_accumulate(self):
        lc = LContext(3)
        ctx = lc.advance(None, FakeState("c1"), lc.tau0())
        ctx = lc.advance(None, FakeState("c2"), ctx)
        assert ctx == ("c2", "c1")

    def test_repeated_site_folds_cycle(self):
        lc = LContext(3)
        ctx = ()
        for label in ("c1", "c2", "c1"):
            ctx = lc.advance(None, FakeState(label), ctx)
        # re-entering c1 truncates back to its earlier occurrence
        assert ctx == ("c1",)

    def test_bound_respected(self):
        lc = LContext(2)
        ctx = ()
        for label in ("c1", "c2", "c3"):
            ctx = lc.advance(None, FakeState(label), ctx)
        assert len(ctx) <= 2

    @given(label_lists)
    def test_contexts_have_unique_entries(self, labels_seq):
        lc = LContext(4)
        ctx = lc.tau0()
        for label in labels_seq:
            ctx = lc.advance(None, FakeState(label), ctx)
            assert len(set(ctx)) == len(ctx)

    @given(label_lists)
    def test_context_space_is_finite(self, labels_seq):
        # every context is a duplicate-free tuple over the 4 labels, len <= 4
        lc = LContext(4)
        ctx = lc.tau0()
        for label in labels_seq:
            ctx = lc.advance(None, FakeState(label), ctx)
        assert len(ctx) <= 4 and set(ctx) <= {"c1", "c2", "c3", "c4"}


class TestBoundedNat:
    def test_counts_transitions(self):
        b = BoundedNat(10)
        ctx = b.tau0()
        for _ in range(3):
            ctx = b.advance(None, FakeState("c"), ctx)
        assert ctx == 3

    def test_saturates_at_n(self):
        b = BoundedNat(2)
        ctx = b.tau0()
        for _ in range(5):
            ctx = b.advance(None, FakeState("c"), ctx)
        assert ctx == 2

    def test_address_includes_counter(self):
        b = BoundedNat(5)
        assert b.valloc("x", 3) == Binding("x", 3)

    def test_big_n_separates_early_bindings(self):
        b = BoundedNat(100)
        c1 = b.advance(None, FakeState("c"), b.tau0())
        c2 = b.advance(None, FakeState("c"), c1)
        assert b.valloc("x", c1) != b.valloc("x", c2)


class TestBinding:
    def test_value_semantics(self):
        assert Binding("x", ("c",)) == Binding("x", ("c",))
        assert hash(Binding("x", ("c",))) == hash(Binding("x", ("c",)))
        assert Binding("x", ()) != Binding("y", ())

    def test_repr_names_var(self):
        assert "x" in repr(Binding("x", ("c1",)))
