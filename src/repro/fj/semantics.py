"""The monadic small-step semantics of Featherweight Java.

``FJInterface`` is FJ's analogue of Figure 2's semantic interface; the
transition :func:`mnext_fj` is written once against it.  Method dispatch
is the language's source of nondeterminism (an abstract receiver address
can hold objects of several classes), and it flows through the monad
exactly as closure application does in the lambda calculi.

Casts: a concrete machine raises :class:`FJCastError` on failure; an
abstract machine prunes the failing branch (``mzero``), which soundly
over-approximates all *successful* executions -- the usual treatment of
guards in abstract interpretation.  Cast-failure reporting is available
separately through the analysis layer (possible-cast-failure queries).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Hashable

from repro.core.monads import Monad, MonadPlus, map_m, sequence_
from repro.fj.class_table import ClassTable
from repro.fj.machine import (
    CastF,
    FieldF,
    FieldVar,
    Frame,
    HaltF,
    InvokeArgF,
    InvokeRcvF,
    NewArgF,
    ObjV,
    PState,
    SiteContext,
)
from repro.fj.syntax import Cast, Expr, FieldAccess, Invoke, New, VarE
from repro.util.pcollections import PMap, pmap


class FJStuck(Exception):
    """A deterministic FJ run reached a stuck state."""


class FJCastError(FJStuck):
    """A (C) cast failed at run time."""


class FJInterface(ABC):
    """The semantic interface of the FJ machine, over a monad instance."""

    def __init__(self, monad: Monad, table: ClassTable):
        self.monad = monad
        self.table = table

    @abstractmethod
    def fetch_values(self, env: PMap, var: str) -> Any:
        """Look a variable up through the store (nondeterministic)."""

    @abstractmethod
    def fetch_addr(self, addr: Hashable) -> Any:
        """Look up the values at an address directly (field reads)."""

    @abstractmethod
    def fetch_konts(self, ka: Hashable) -> Any:
        """Look up frames at a continuation address."""

    @abstractmethod
    def bind_addr(self, addr: Hashable, value: Any) -> Any:
        """Write one binding (object or frame) through the monad."""

    @abstractmethod
    def alloc(self, var: Any) -> Any:
        """Allocate an address for a variable or :class:`FieldVar`."""

    @abstractmethod
    def alloc_kont(self, site: Expr) -> Any:
        """Allocate a continuation address for the frame pushed at ``site``."""

    @abstractmethod
    def tick(self, receiver: ObjV, site_state: Any) -> Any:
        """Advance time on a method dispatch."""

    def stuck(self, pstate: PState, reason: str) -> Any:
        if isinstance(self.monad, MonadPlus):
            return self.monad.mzero()
        raise FJStuck(f"{reason} at {pstate!r}")

    def cast_failure(self, pstate: PState, value: ObjV, target: str) -> Any:
        if isinstance(self.monad, MonadPlus):
            return self.monad.mzero()
        raise FJCastError(f"({target}) cast of a {value.cls} at {pstate!r}")


def _push(interface: FJInterface, site: Expr, frame: Frame, enter: Expr, env: PMap):
    monad = interface.monad
    return monad.bind(
        interface.alloc_kont(site),
        lambda ka2: monad.then(
            interface.bind_addr(ka2, frame),
            monad.unit(PState(enter, env, ka2)),
        ),
    )


def mnext_fj(interface: FJInterface, pstate: PState) -> Any:
    """One monadic FJ machine step."""
    monad = interface.monad
    ctrl, env, ka = pstate.ctrl, pstate.env, pstate.ka

    # -- eval mode ----------------------------------------------------------
    if isinstance(ctrl, VarE):
        return monad.bind(
            interface.fetch_values(env, ctrl.name),
            lambda v: monad.unit(PState(v, env, ka)),
        )
    if isinstance(ctrl, FieldAccess):
        return _push(interface, ctrl, FieldF(ctrl.fld, ka), ctrl.obj, env)
    if isinstance(ctrl, Invoke):
        frame = InvokeRcvF(ctrl, ctrl.method, ctrl.args, env, ka)
        return _push(interface, ctrl, frame, ctrl.obj, env)
    if isinstance(ctrl, New):
        if not ctrl.args:
            return _allocate_object(interface, pstate, ctrl.cls, (), ka)
        frame = NewArgF(ctrl, ctrl.cls, ctrl.args[1:], (), env, ka)
        return _push(interface, ctrl, frame, ctrl.args[0], env)
    if isinstance(ctrl, Cast):
        return _push(interface, ctrl, CastF(ctrl.cls, ka), ctrl.obj, env)

    # -- return mode ----------------------------------------------------------
    if isinstance(ctrl, ObjV):
        return monad.bind(
            interface.fetch_konts(ka),
            lambda frame: _continue(interface, pstate, ctrl, frame),
        )
    return interface.stuck(pstate, f"unrecognized control {ctrl!r}")


def _continue(interface: FJInterface, pstate: PState, value: ObjV, frame: Frame) -> Any:
    monad = interface.monad
    table = interface.table
    if isinstance(frame, HaltF):
        return monad.unit(pstate)
    if isinstance(frame, FieldF):
        try:
            index = table.field_index(value.cls, frame.fld)
        except Exception:
            return interface.stuck(pstate, f"{value.cls} has no field {frame.fld}")
        addr = value.field_addrs[index]
        return monad.bind(
            interface.fetch_addr(addr),
            lambda v: monad.unit(PState(v, pstate.env, frame.parent)),
        )
    if isinstance(frame, InvokeRcvF):
        if not frame.args:
            return _dispatch(interface, pstate, frame.site, value, (), frame.parent)
        next_frame = InvokeArgF(
            frame.site, frame.method, value, frame.args[1:], (), frame.env, frame.parent
        )
        return _push(interface, frame.args[0], next_frame, frame.args[0], frame.env)
    if isinstance(frame, InvokeArgF):
        done = frame.done + (value,)
        if not frame.remaining:
            return _dispatch(
                interface, pstate, frame.site, frame.receiver, done, frame.parent
            )
        next_frame = InvokeArgF(
            frame.site,
            frame.method,
            frame.receiver,
            frame.remaining[1:],
            done,
            frame.env,
            frame.parent,
        )
        return _push(interface, frame.remaining[0], next_frame, frame.remaining[0], frame.env)
    if isinstance(frame, NewArgF):
        done = frame.done + (value,)
        if not frame.remaining:
            return _allocate_object(interface, pstate, frame.cls, done, frame.parent)
        next_frame = NewArgF(
            frame.site, frame.cls, frame.remaining[1:], done, frame.env, frame.parent
        )
        return _push(interface, frame.remaining[0], next_frame, frame.remaining[0], frame.env)
    if isinstance(frame, CastF):
        if table.is_subtype(value.cls, frame.cls):
            return monad.unit(PState(value, pstate.env, frame.parent))
        return interface.cast_failure(pstate, value, frame.cls)
    return interface.stuck(pstate, f"unrecognized frame {frame!r}")


def _dispatch(
    interface: FJInterface,
    pstate: PState,
    site: Expr,
    receiver: ObjV,
    arg_values: tuple,
    parent_ka: Hashable,
) -> Any:
    """Method dispatch: look up ``mbody``, bind ``this`` and parameters."""
    monad = interface.monad
    method_name = site.method  # site is the Invoke expression
    resolved = interface.table.mbody(method_name, receiver.cls)
    if resolved is None:
        return interface.stuck(
            pstate, f"class {receiver.cls} has no method {method_name}"
        )
    mdef, _owner = resolved
    params = mdef.param_names()
    if len(params) != len(arg_values):
        return interface.stuck(pstate, f"arity mismatch calling {method_name}")

    def with_time(_ignored: Any) -> Any:
        names = ("this",) + params
        values = (receiver,) + arg_values
        return monad.bind(
            map_m(monad, interface.alloc, names),
            lambda addrs: monad.then(
                sequence_(
                    monad, [interface.bind_addr(a, v) for a, v in zip(addrs, values)]
                ),
                monad.unit(PState(mdef.body, pmap(zip(names, addrs)), parent_ka)),
            ),
        )

    return monad.bind(interface.tick(receiver, SiteContext(site)), with_time)


def _allocate_object(
    interface: FJInterface,
    pstate: PState,
    cls: str,
    arg_values: tuple,
    parent_ka: Hashable,
) -> Any:
    """``new C(v...)``: allocate one cell per field, return the object."""
    monad = interface.monad
    fields = interface.table.fields(cls)
    if len(fields) != len(arg_values):
        return interface.stuck(pstate, f"wrong number of fields for new {cls}")
    field_vars = [FieldVar(cls, f) for _t, f in fields]
    return monad.bind(
        map_m(monad, interface.alloc, field_vars),
        lambda addrs: monad.then(
            sequence_(
                monad, [interface.bind_addr(a, v) for a, v in zip(addrs, arg_values)]
            ),
            monad.unit(PState(ObjV(cls, tuple(addrs)), pstate.env, parent_ka)),
        ),
    )


def is_final_fj(pstate: PState) -> bool:
    from repro.fj.machine import HALT_ADDRESS

    return pstate.is_return() and pstate.ka == HALT_ADDRESS
