"""The resident server's counter surface (the ``stats`` method's backing).

One :class:`ServerMetrics` instance per server, shared by every worker
thread.  Since PR 10 it is a thin *view* over a private
:class:`repro.obs.metrics.MetricsRegistry`: every request/tier/error
count and latency sample lives in one registry series, and both export
surfaces -- the JSON ``stats`` document and the Prometheus ``metrics``
text -- read the *same* counter objects, which is what makes the two
reconcile exactly (a property CI scrapes for).  The registry is private
per server, not the process-wide default, so parallel test servers in
one interpreter cannot bleed counts into each other.

Counting discipline (load-bearing for the golden protocol tests):
requests are counted at *receipt* and errors/tiers/latencies at
*handler completion* -- all on the event-loop side, never inside the
worker job.  A timed-out request therefore contributes one request, one
``timeout`` error, and nothing else, even though its orphaned worker job
may still be running (and eventually finishing) when the next ``stats``
request is answered: counters reflect what the server *said*, which is
the only thing a deterministic test can pin.
"""

from __future__ import annotations

import threading
import time

from repro.obs.metrics import Counter, Histogram, MetricsRegistry, percentile

__all__ = ["ServerMetrics", "percentile"]


class ServerMetrics:
    """Thread-safe request/tier/error/latency accounting for one server."""

    #: Per-method latency samples kept for the percentiles; older samples
    #: roll off so a long-lived daemon's stats stay O(1) and current.
    MAX_SAMPLES = Histogram.MAX_SAMPLES

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self._lock = threading.Lock()
        self._started = time.monotonic()
        # label -> instrument maps: the instruments live in the registry
        # (so ``prometheus()`` sees them); these dicts only memoize the
        # lookup and remember which labels have appeared, in order.
        self._requests: dict[str, Counter] = {}
        self._errors: dict[str, Counter] = {}
        self._tiers: dict[str, Counter] = {}
        self._latencies: dict[str, Histogram] = {}
        self._evaluations = self.registry.counter("serve_work_evaluations_total")
        self._dedup_hits = self.registry.counter("serve_work_dedup_hits_total")
        self._max_rank = self.registry.gauge("serve_work_max_rank")
        self.registry.describe(
            "serve_requests_total", "Requests received, by protocol method."
        )
        self.registry.describe(
            "serve_errors_total", "Error responses sent, by protocol error name."
        )
        self.registry.describe(
            "serve_tier_total", "Jobs answered, by serving tier (hot|disk|warm|cold)."
        )
        self.registry.describe(
            "serve_latency_seconds", "Wall-clock service time, by protocol method."
        )

    def _labeled(
        self, cache: dict[str, Counter], name: str, label_key: str, label: str
    ) -> Counter:
        with self._lock:
            counter = cache.get(label)
            if counter is None:
                counter = self.registry.counter(name, **{label_key: label})
                cache[label] = counter
            return counter

    def record_request(self, method: str) -> None:
        """Count one request at receipt (before any validation or work)."""
        self._labeled(self._requests, "serve_requests_total", "method", method).inc()

    def record_error(self, name: str) -> None:
        """Count one error response by its stable protocol name."""
        self._labeled(self._errors, "serve_errors_total", "error", name).inc()

    def record_tier(self, tier: str) -> None:
        """Count which tier answered (hot | disk | warm | cold)."""
        self._labeled(self._tiers, "serve_tier_total", "tier", tier).inc()

    def record_work(self, stats: dict) -> None:
        """Accumulate one outcome's engine-work counters (handler side).

        ``evaluations``/``dedup_hits`` sum across every analysed job
        (cache-served outcomes carry no stats and contribute nothing);
        ``max_rank`` keeps the deepest dependency rank any served
        analysis reached.  Together they make the scheduling win
        observable from the ``stats`` method without touching per-job
        report rows.
        """
        self._evaluations.inc(stats.get("evaluations") or 0)
        self._dedup_hits.inc(stats.get("dedup_hits") or 0)
        rank = stats.get("max_rank") or 0
        with self._lock:
            if rank > self._max_rank.value:
                self._max_rank.set(rank)

    def record_latency(self, method: str, seconds: float) -> None:
        """Record one successful request's wall-clock service time."""
        with self._lock:
            histogram = self._latencies.get(method)
            if histogram is None:
                histogram = self.registry.histogram(
                    "serve_latency_seconds", method=method
                )
                self._latencies[method] = histogram
        histogram.observe(seconds)

    def snapshot(self) -> dict:
        """One consistent stats document (the ``stats`` method's core).

        ``latency`` values are rounded to microseconds: precise enough
        for any consumer, and it keeps the document shape stable.
        """
        with self._lock:
            requests = {m: c.value for m, c in sorted(self._requests.items())}
            errors = {n: c.value for n, c in sorted(self._errors.items())}
            tiers = {t: c.value for t, c in sorted(self._tiers.items())}
            latency = {}
            for method, histogram in sorted(self._latencies.items()):
                samples = histogram.samples()
                latency[method] = {
                    "count": len(samples),
                    "p50": round(percentile(samples, 0.50), 6),
                    "p99": round(percentile(samples, 0.99), 6),
                }
            return {
                "uptime_seconds": round(time.monotonic() - self._started, 6),
                "requests": requests,
                "errors": errors,
                "tiers": tiers,
                "work": {
                    "evaluations": self._evaluations.value,
                    "dedup_hits": self._dedup_hits.value,
                    "max_rank": int(self._max_rank.value),
                },
                "latency": latency,
            }

    def prometheus(self) -> str:
        """The same counters in Prometheus text exposition format.

        Reads the identical registry series ``snapshot`` reads, so a
        scraper's view reconciles exactly with the ``stats`` method
        (the CI server-smoke job asserts this).
        """
        self.registry.gauge("serve_uptime_seconds").set(
            round(time.monotonic() - self._started, 6)
        )
        return self.registry.prometheus()
