"""Kleene iteration, widening, worklist exploration (paper section 5.2)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.fixpoint import (
    Collecting,
    FixpointDiverged,
    kleene_iterate,
    kleene_iterate_widened,
    reachable,
    worklist_explore,
)
from repro.core.lattice import PowersetLattice


class TestKleene:
    def setup_method(self):
        self.ps = PowersetLattice()

    def test_constant_function(self):
        assert kleene_iterate(self.ps, lambda _s: frozenset([1, 2])) == frozenset([1, 2])

    def test_accumulating_function(self):
        # F(X) = {0} | {x+1 | x in X, x < 5}: lfp = {0..5}
        def f(xs):
            return frozenset([0]) | frozenset(x + 1 for x in xs if x < 5)

        assert kleene_iterate(self.ps, f) == frozenset(range(6))

    def test_bottom_fixed_point(self):
        assert kleene_iterate(self.ps, lambda s: s) == frozenset()

    def test_divergence_detected(self):
        def f(xs):
            return xs | frozenset([len(xs)])

        with pytest.raises(FixpointDiverged):
            kleene_iterate(self.ps, f, max_steps=50)

    @given(st.frozensets(st.integers(0, 10), max_size=5))
    def test_result_is_fixed_point(self, seed):
        def f(xs):
            return seed | frozenset(x + 1 for x in xs if x < 20)

        fp = kleene_iterate(self.ps, f)
        assert f(fp) == fp


class TestWidening:
    def setup_method(self):
        self.ps = PowersetLattice()

    def test_widen_with_join_matches_kleene(self):
        def f(xs):
            return frozenset([0]) | frozenset(x + 1 for x in xs if x < 5)

        plain = kleene_iterate(self.ps, f)
        widened = kleene_iterate_widened(self.ps, f, self.ps.join)
        assert plain == widened

    def test_aggressive_widening_overapproximates(self):
        universe = frozenset(range(100))

        def widen(_prev, _nxt):
            return universe  # jump straight to an upper bound

        def f(xs):
            return frozenset([0]) | frozenset(x + 1 for x in xs if x < 50)

        result = kleene_iterate_widened(self.ps, f, widen, max_steps=10)
        exact = kleene_iterate(self.ps, f)
        assert self.ps.leq(exact, result)

    def test_widening_can_terminate_where_kleene_is_slow(self):
        # F ascends one element per Kleene round; widening jumps to the
        # full (closed) range after a few rounds and stabilizes at once.
        def f(xs):
            return xs | frozenset([(len(xs) * 7) % 50])

        def widen(_prev, nxt):
            return nxt if len(nxt) < 3 else nxt | frozenset(range(50))

        with pytest.raises(FixpointDiverged):
            kleene_iterate(self.ps, f, max_steps=5)
        result = kleene_iterate_widened(self.ps, f, widen, max_steps=100)
        assert f(result) <= result


class TestReachable:
    def test_linear_chain(self):
        assert reachable([0], lambda n: [n + 1] if n < 4 else []) == frozenset(range(5))

    def test_cycle_terminates(self):
        assert reachable([0], lambda n: [(n + 1) % 3]) == frozenset([0, 1, 2])

    def test_branching(self):
        def succ(n):
            return [2 * n, 2 * n + 1] if n < 4 else []

        assert reachable([1], succ) == frozenset([1, 2, 3, 4, 5, 6, 7])

    def test_budget(self):
        with pytest.raises(FixpointDiverged):
            reachable([0], lambda n: [n + 1], max_states=10)

    @given(st.integers(0, 6))
    def test_matches_naive_closure(self, start):
        def succ(n):
            return [(n * 2) % 7, (n + 3) % 7]

        # naive iterate-to-fixpoint closure
        seen = {start}
        while True:
            nxt = seen | {m for n in seen for m in succ(n)}
            if nxt == seen:
                break
            seen = nxt
        assert reachable([start], succ) == frozenset(seen)


class _CounterCollecting(Collecting):
    """A toy Collecting over a 'monad' of plain successor sets."""

    def __init__(self):
        self.ps = PowersetLattice()

    def lattice(self):
        return self.ps

    def inject(self, state):
        return frozenset([state])

    def apply_step(self, step, fp):
        out = set()
        for s in fp:
            out |= set(step(s))
        return frozenset(out)

    def successors_of(self, step, config):
        return step(config)


class TestWorklistAgreesWithKleene:
    def test_same_fixed_point(self):
        from repro.core.fixpoint import explore_fp

        collecting = _CounterCollecting()

        def step(n):
            return [n + 1, n + 2] if n < 6 else [n]

        kleene_fp = explore_fp(collecting, step, 0)
        worklist_fp = worklist_explore(collecting, step, 0, collecting.successors_of)
        assert kleene_fp == worklist_fp
